package faults

import (
	"fmt"
	"sort"

	"github.com/disagg/smartds/internal/metrics"
)

// Monitor turns the client-visible completion stream into recovery
// metrics: how long after each fault the first request completed again
// (time-to-reroute), how large the worst completion gap was
// (unavailability), and how long tail latency stayed elevated over the
// pre-fault baseline. The cluster feeds it from every client's
// completion hook; all timestamps are virtual time.
type Monitor struct {
	completions []completion
}

type completion struct {
	at, lat float64
	err     bool
}

// OnCompletion records one client-visible request completion.
func (m *Monitor) OnCompletion(at, lat float64, err bool) {
	m.completions = append(m.completions, completion{at: at, lat: lat, err: err})
}

// Completions returns how many completions were observed.
func (m *Monitor) Completions() int { return len(m.completions) }

// Recovery is the per-event view of how service came back.
type Recovery struct {
	Event Event
	// TimeToRecover is the delay from the fault's start to the first
	// successful completion at or after it; negative when no completion
	// followed (service never recovered inside the run).
	TimeToRecover float64
}

// Stats is the campaign-wide recovery summary.
type Stats struct {
	BaselineP99 float64 // pre-fault p99 latency (successful completions)
	Recoveries  []Recovery
	// MaxGap is the widest gap between consecutive successful
	// completions once faults began — the worst unavailability interval.
	MaxGap float64
	// Unavailable sums all completion gaps above GapThreshold.
	Unavailable  float64
	GapThreshold float64
	// ElevatedWindow is the total time tail latency spent above
	// 3x the pre-fault baseline p99 after faults began.
	ElevatedWindow float64
	// Errors counts failed completions.
	Errors int
}

// gapThresholdFloor keeps tiny inter-arrival jitter out of the
// unavailability sum even when the baseline is very fast.
const gapThresholdFloor = 250e-6

// Stats computes the recovery summary for a schedule. The monitor's
// completion stream is consulted in arrival order (already sorted:
// virtual time is monotonic).
func (m *Monitor) Stats(sched *Schedule) Stats {
	st := Stats{GapThreshold: gapThresholdFloor}
	faultStart := sched.FirstStart()

	var baseline []float64
	for _, c := range m.completions {
		if c.err {
			st.Errors++
			continue
		}
		if c.at < faultStart {
			baseline = append(baseline, c.lat)
		}
	}
	st.BaselineP99 = percentile(baseline, 0.99)

	for _, e := range sched.Events {
		rec := Recovery{Event: e, TimeToRecover: -1}
		for _, c := range m.completions {
			if !c.err && c.at >= e.Start {
				rec.TimeToRecover = c.at - e.Start
				break
			}
		}
		st.Recoveries = append(st.Recoveries, rec)
	}

	// Completion gaps and elevated-latency spans after faults began.
	elevated := 3 * st.BaselineP99
	prevAt := faultStart
	inSpan := false
	spanStart := 0.0
	for _, c := range m.completions {
		if c.err || c.at < faultStart {
			continue
		}
		if gap := c.at - prevAt; gap > 0 {
			if gap > st.MaxGap {
				st.MaxGap = gap
			}
			if gap > st.GapThreshold {
				st.Unavailable += gap
			}
		}
		prevAt = c.at
		if st.BaselineP99 > 0 {
			if c.lat > elevated && !inSpan {
				inSpan = true
				spanStart = c.at
			} else if c.lat <= elevated && inSpan {
				inSpan = false
				st.ElevatedWindow += c.at - spanStart
			}
		}
	}
	if inSpan {
		st.ElevatedWindow += prevAt - spanStart
	}
	return st
}

// Table renders the stats as a metrics table (one row per event).
func (st Stats) Table() *metrics.Table {
	t := metrics.NewTable("fault recovery",
		"fault", "target", "window", "time-to-recover")
	for _, r := range st.Recoveries {
		ttr := "never"
		if r.TimeToRecover >= 0 {
			ttr = fmt.Sprintf("%.0f us", r.TimeToRecover*1e6)
		}
		t.AddRow(r.Event.Kind.String(), r.Event.Target,
			fmt.Sprintf("%.1f-%.1f ms", r.Event.Start*1e3, r.Event.End()*1e3), ttr)
	}
	t.AddNote("baseline p99 %.0f us; max completion gap %.0f us; unavailable %.0f us (gaps > %.0f us); elevated-latency window %.0f us; %d errored completions",
		st.BaselineP99*1e6, st.MaxGap*1e6, st.Unavailable*1e6,
		st.GapThreshold*1e6, st.ElevatedWindow*1e6, st.Errors)
	return t
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
