package faults

import (
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
)

// Loss rules live behind one chained fabric LossFn: every rule has a
// virtual-time window and source/destination address sets, and a
// per-rule deterministic PRNG — message order in the sim is
// deterministic, so drop decisions replay exactly.

type lossModel interface {
	drop() bool
}

// blockAll is the crash/restart model: the port is dark.
type blockAll struct{}

func (blockAll) drop() bool { return true }

// bernoulli drops each message independently with probability p.
type bernoulli struct {
	p float64
	r *rng.Source
}

func (b *bernoulli) drop() bool { return b.r.Float64() < b.p }

// gilbertElliott is the classic two-state burst-loss model: the link
// flips between a good state (lossless) and a bad state where each
// message drops with probability p. Transition probabilities are fixed
// so param keeps the single-knob grammar; the expected bad-state dwell
// is 1/leaveBad messages.
type gilbertElliott struct {
	p   float64 // drop probability inside a burst
	bad bool
	r   *rng.Source
}

const (
	geEnterBad = 0.02 // per-message chance a burst starts
	geLeaveBad = 0.15 // per-message chance a burst ends
)

func (g *gilbertElliott) drop() bool {
	if g.bad {
		if g.r.Float64() < geLeaveBad {
			g.bad = false
		}
	} else if g.r.Float64() < geEnterBad {
		g.bad = true
	}
	return g.bad && g.r.Float64() < g.p
}

// lossRule is one active drop window.
type lossRule struct {
	start, end float64
	// src/dst restrict the rule to matching endpoints; nil = wildcard.
	src, dst map[netsim.Addr]bool
	model    lossModel
}

func (r *lossRule) matches(now float64, m *netsim.Message) bool {
	if now < r.start || now >= r.end {
		return false
	}
	if r.src != nil && !r.src[m.Src] {
		return false
	}
	if r.dst != nil && !r.dst[m.Dst] {
		return false
	}
	return true
}

// lossSet owns the rules and the chained LossFn.
type lossSet struct {
	env   *sim.Env
	rules []*lossRule
}

// install chains the rule set onto the fabric, preserving any
// previously installed predicate (e.g. a test's own injector).
func (ls *lossSet) install(f *netsim.Fabric) {
	prev := f.LossFn()
	f.SetLossFn(func(m *netsim.Message) bool {
		if prev != nil && prev(m) {
			return true
		}
		now := ls.env.Now()
		for _, r := range ls.rules {
			if r.matches(now, m) && r.model.drop() {
				return true
			}
		}
		return false
	})
}

func addrSet(addrs []netsim.Addr) map[netsim.Addr]bool {
	if len(addrs) == 0 {
		return nil
	}
	set := make(map[netsim.Addr]bool, len(addrs))
	for _, a := range addrs {
		set[a] = true
	}
	return set
}
