package faults

import (
	"math"
	"testing"
)

// almost compares virtual-time floats with a tolerance well below any
// interval the monitor reports.
func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMonitorStats(t *testing.T) {
	sched := MustParse("crash:ss0@10ms+5ms")
	var m Monitor

	// Steady pre-fault service: one completion every 100 us at 50 us
	// latency, from 1 ms to 10 ms.
	for at := 1e-3; at < 10e-3; at += 100e-6 {
		m.OnCompletion(at, 50e-6, false)
	}
	// The fault opens a 2 ms completion gap, then service resumes with
	// elevated latency for 1 ms before settling.
	m.OnCompletion(12e-3, 400e-6, false)   // first post-fault success
	m.OnCompletion(12.5e-3, 400e-6, false) // still elevated (> 3x baseline)
	m.OnCompletion(13e-3, 60e-6, false)    // settled
	m.OnCompletion(14e-3, 60e-6, false)
	m.OnCompletion(14.1e-3, 60e-6, true) // one failed completion

	st := m.Stats(sched)

	if !almost(st.BaselineP99, 50e-6) {
		t.Fatalf("BaselineP99 = %v, want 50us", st.BaselineP99)
	}
	if st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
	if len(st.Recoveries) != 1 {
		t.Fatalf("Recoveries = %d, want 1", len(st.Recoveries))
	}
	// First success at/after the 10 ms fault start is at 12 ms.
	if ttr := st.Recoveries[0].TimeToRecover; !almost(ttr, 2e-3) {
		t.Fatalf("TimeToRecover = %v, want 2ms", ttr)
	}
	// Widest gap: fault start (10 ms) to first completion (12 ms).
	if !almost(st.MaxGap, 2e-3) {
		t.Fatalf("MaxGap = %v, want 2ms", st.MaxGap)
	}
	if st.Unavailable < st.MaxGap {
		t.Fatalf("Unavailable %v < MaxGap %v", st.Unavailable, st.MaxGap)
	}
	// Latency above 3x50us spans 12 ms..13 ms.
	if !almost(st.ElevatedWindow, 1e-3) {
		t.Fatalf("ElevatedWindow = %v, want 1ms", st.ElevatedWindow)
	}
}

func TestMonitorNeverRecovers(t *testing.T) {
	sched := MustParse("crash:ss0@5ms+5ms")
	var m Monitor
	m.OnCompletion(1e-3, 50e-6, false) // only pre-fault traffic
	st := m.Stats(sched)
	if len(st.Recoveries) != 1 || st.Recoveries[0].TimeToRecover >= 0 {
		t.Fatalf("want negative TimeToRecover, got %+v", st.Recoveries)
	}
}

func TestParseEmptySpec(t *testing.T) {
	sched, err := Parse("")
	if err != nil || len(sched.Events) != 0 {
		t.Fatalf("Parse(\"\") = %v, %v; want empty schedule", sched.Events, err)
	}
}
