package faults

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "loss:vm0->mt@4ms+6ms:0.03;" +
		"crash:ss1@8ms+6ms;" +
		"degrade:ss2@16ms+4ms:0.25;" +
		"engine:mt@21ms+3ms;" +
		"restart:mt@26ms+1.5ms"
	sched, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(sched.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(sched.Events))
	}
	// String() must re-parse to an identical schedule.
	again, err := Parse(sched.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", sched.String(), err)
	}
	if got, want := again.String(), sched.String(); got != want {
		t.Fatalf("round trip drifted:\n got %q\nwant %q", got, want)
	}
}

func TestParseSortsByStart(t *testing.T) {
	sched := MustParse("crash:ss1@8ms+2ms;loss:*@1ms+2ms:0.1;engine:mt@4ms+1ms")
	for i := 1; i < len(sched.Events); i++ {
		if sched.Events[i].Start < sched.Events[i-1].Start {
			t.Fatalf("events not sorted by start: %v", sched.Events)
		}
	}
	if sched.Events[0].Kind != Loss {
		t.Fatalf("first event should be the 1ms loss, got %v", sched.Events[0])
	}
}

func TestParseDefaults(t *testing.T) {
	sched := MustParse("loss:vm0->mt@1ms+1ms;degrade:ss0@2ms+1ms;burstloss:mt->ss0@3ms+1ms")
	if p := sched.Events[0].Param; p != 0.05 {
		t.Fatalf("loss default param = %v, want 0.05", p)
	}
	if p := sched.Events[1].Param; p != 0.5 {
		t.Fatalf("degrade default param = %v, want 0.5", p)
	}
	if p := sched.Events[2].Param; p != 0.05 {
		t.Fatalf("burstloss default param = %v, want 0.05", p)
	}
}

func TestParseWindows(t *testing.T) {
	sched := MustParse("crash:ss0@2ms+3ms;loss:*@10ms+5ms:0.1")
	if got := sched.FirstStart(); got != 2e-3 {
		t.Fatalf("FirstStart = %v, want 2ms", got)
	}
	if got := sched.LastEnd(); got != 15e-3 {
		t.Fatalf("LastEnd = %v, want 15ms", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"meteor:ss0@1ms+1ms", "unknown fault kind"},
		{"crash:ss0", "missing @start"},
		{"crash:ss0@1ms", "missing +duration"},
		{"crash:@1ms+1ms", "empty target"},
		{"crash:ss0@zebra+1ms", "bad start"},
		{"crash:ss0@1ms+zebra", "bad duration"},
		{"crash:ss0@-1ms+1ms", "start >= 0"},
		{"crash:ss0@1ms+0s", "duration > 0"},
		{"loss:vm0->mt@1ms+1ms:1.5", "loss probability"},
		{"loss:vm0->mt@1ms+1ms:-0.1", "loss probability"},
		{"degrade:ss0@1ms+1ms:-0.5", "rate fraction"},
		{"degrade:ss0@1ms+1ms:1.5", "rate fraction"},
		{"crash:*@1ms+1ms", "wildcard"},
		{"crash:ss0@1ms+1ms:0.5", "takes no param"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) = nil error, want one mentioning %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestKindNames(t *testing.T) {
	for k := Crash; k <= Restart; k++ {
		name := k.String()
		back, ok := kindByName[name]
		if !ok || back != k {
			t.Fatalf("kind %d name %q does not round-trip", k, name)
		}
	}
}
