package faults

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/disagg/smartds/internal/evlog"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rng"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/storage"
	"github.com/disagg/smartds/internal/trace"
)

// Target is everything the injector needs to reach into a running
// cluster. The cluster package builds it (cluster.ApplyFaults); tests
// can assemble one by hand.
type Target struct {
	Env    *sim.Env
	Fabric *netsim.Fabric
	MT     *middletier.Server
	// Storage is indexed so "ssN" in a spec means Storage[N]; servers
	// are expected at fabric address "ssN" (the cluster convention).
	Storage []*storage.Server
	// Trace, when set, records fault transitions on the "faults" track.
	Trace *trace.Tracer
	// Log, when set, receives structured fault-transition events (the
	// "faults" component of the cluster's event log).
	Log *evlog.Logger
	// Seed derives every stochastic drop decision; same seed + same
	// schedule replays identically.
	Seed uint64
	// Reconnect re-establishes client<->middle-tier transports whose
	// retry budgets were exhausted during a blackhole window (middle-
	// tier restart). Nil skips the step.
	Reconnect func()
}

// Injector replays one Schedule against a Target.
type Injector struct {
	tgt   Target
	sched *Schedule
	armed bool

	// Monitor collects recovery metrics from client completions; the
	// cluster wires each client's completion hook to it.
	Monitor Monitor
}

// New binds a schedule to a target. Call Arm before Env.Run.
func New(tgt Target, sched *Schedule) *Injector {
	return &Injector{tgt: tgt, sched: sched}
}

// Schedule returns the bound schedule.
func (inj *Injector) Schedule() *Schedule { return inj.sched }

// Arm validates every event against the target and installs the loss
// rules and virtual-time timers that fire the campaign. It must run
// before the simulation clock passes the first event.
func (inj *Injector) Arm() error {
	if inj.armed {
		return fmt.Errorf("faults: injector already armed")
	}
	inj.armed = true
	root := rng.New(inj.tgt.Seed ^ 0x5df1a7c4b3e91d07)
	ls := &lossSet{env: inj.tgt.Env}
	for _, e := range inj.sched.Events {
		// One PRNG stream per event, split in schedule order: adding or
		// removing an event never perturbs another event's drops.
		r := root.Split()
		var err error
		switch e.Kind {
		case Loss, BurstLoss:
			err = inj.armLoss(ls, e, r)
		case Crash:
			err = inj.armCrash(ls, e)
		case Degrade:
			err = inj.armDegrade(e)
		case Engine:
			err = inj.armEngine(e)
		case Restart:
			err = inj.armRestart(ls, e)
		}
		if err != nil {
			return fmt.Errorf("faults: %s: %w", e, err)
		}
	}
	if len(ls.rules) > 0 {
		ls.install(inj.tgt.Fabric)
	}
	return nil
}

// emit records a fault transition on the trace's faults track and the
// structured event log.
func (inj *Injector) emit(at float64, name string, e Event) {
	inj.tgt.Trace.Emit(at, "faults", name, e.String())
	if inj.tgt.Log.Enabled(evlog.Warn) {
		inj.tgt.Log.Warn(name, "kind", e.Kind.String(), "target", e.Target,
			"start", e.Start, "dur", e.Duration)
	}
}

func (inj *Injector) armLoss(ls *lossSet, e Event, r *rng.Source) error {
	var model lossModel
	if e.Kind == BurstLoss {
		model = &gilbertElliott{p: e.Param, r: r}
	} else {
		model = &bernoulli{p: e.Param, r: r}
	}
	if src, dst, isLink := splitLink(e.Target); isLink {
		srcAddrs, err := inj.resolveAddrs(src)
		if err != nil {
			return err
		}
		dstAddrs, err := inj.resolveAddrs(dst)
		if err != nil {
			return err
		}
		ls.rules = append(ls.rules, &lossRule{
			start: e.Start, end: e.End(),
			src: addrSet(srcAddrs), dst: addrSet(dstAddrs), model: model,
		})
	} else {
		addrs, err := inj.resolveAddrs(e.Target)
		if err != nil {
			return err
		}
		// Node target: loss in both directions, one rule each so a
		// message is never sampled twice.
		set := addrSet(addrs)
		ls.rules = append(ls.rules,
			&lossRule{start: e.Start, end: e.End(), src: set, model: model},
			&lossRule{start: e.Start, end: e.End(), dst: set, model: model})
	}
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.Start, func() { inj.emit(e.Start, "loss-start", e) })
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.End(), func() { inj.emit(e.End(), "loss-end", e) })
	return nil
}

// armCrash fail-stops a storage server: its fabric port goes dark, the
// middle tier routes around it, and the store's contents are lost. At
// recovery the transports are re-established and surviving replicas
// stream the server's chunks back before it rejoins placement.
func (inj *Injector) armCrash(ls *lossSet, e Event) error {
	idx, err := inj.storageIndex(e.Target)
	if err != nil {
		return err
	}
	srv := inj.tgt.Storage[idx]
	set := addrSet([]netsim.Addr{netsim.Addr(e.Target)})
	ls.rules = append(ls.rules,
		&lossRule{start: e.Start, end: e.End(), src: set, model: blockAll{}},
		&lossRule{start: e.Start, end: e.End(), dst: set, model: blockAll{}})
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.Start, func() {
		inj.emit(e.Start, "crash", e)
		inj.tgt.MT.SetServerDown(idx, true)
		srv.Crash()
	})
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.End(), func() {
		srv.Recover()
		inj.tgt.MT.ReconnectStorage(idx, srv)
		inj.tgt.Env.Go("faults.rebuild", func(p *sim.Proc) {
			bytes := inj.tgt.MT.RebuildServer(p, idx, inj.tgt.Storage)
			inj.tgt.MT.SetServerDown(idx, false)
			if inj.tgt.Trace != nil {
				inj.tgt.Trace.Emit(p.Now(), "faults", "recovered",
					fmt.Sprintf("%s rebuilt %.0f snapshot bytes", e.Target, bytes))
			}
			if inj.tgt.Log.Enabled(evlog.Info) {
				inj.tgt.Log.Info("recovered", "target", e.Target, "rebuild_bytes", bytes)
			}
		})
	})
	return nil
}

func (inj *Injector) armDegrade(e Event) error {
	addrs, err := inj.resolveAddrs(e.Target)
	if err != nil {
		return err
	}
	ports := make([]*netsim.Port, len(addrs))
	for i, a := range addrs {
		ports[i] = inj.tgt.Fabric.Port(a)
		if ports[i] == nil {
			return fmt.Errorf("no fabric port at %q", a)
		}
	}
	orig := make([]float64, len(ports))
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.Start, func() {
		inj.emit(e.Start, "degrade-start", e)
		for i, p := range ports {
			orig[i] = p.Rate()
			p.SetRate(orig[i] * e.Param)
		}
	})
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.End(), func() {
		for i, p := range ports {
			p.SetRate(orig[i])
		}
		inj.emit(e.End(), "degrade-end", e)
	})
	return nil
}

func (inj *Injector) armEngine(e Event) error {
	var engines []int
	switch {
	case e.Target == "mt":
		for i := 0; i < inj.tgt.MT.Config().Ports; i++ {
			engines = append(engines, i)
		}
	case strings.HasPrefix(e.Target, "mt"):
		n, err := strconv.Atoi(e.Target[2:])
		if err != nil || n < 0 || n >= inj.tgt.MT.Config().Ports {
			return fmt.Errorf("bad engine target %q", e.Target)
		}
		engines = []int{n}
	default:
		return fmt.Errorf("engine faults target the middle tier (mt or mtN), got %q", e.Target)
	}
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.Start, func() {
		inj.emit(e.Start, "engine-down", e)
		for _, i := range engines {
			inj.tgt.MT.SetEngineDown(i, true)
		}
	})
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.End(), func() {
		for _, i := range engines {
			inj.tgt.MT.SetEngineDown(i, false)
		}
		inj.emit(e.End(), "engine-up", e)
	})
	return nil
}

// armRestart blackholes every middle-tier port for the window — a
// crash-restart of the middle-tier process. Placement and pending
// bookkeeping survive (durable metadata); in-flight transports ride
// go-back-N retransmission through short windows and are explicitly
// reconnected after long ones.
func (inj *Injector) armRestart(ls *lossSet, e Event) error {
	if e.Target != "mt" {
		return fmt.Errorf("restart targets the middle tier (mt), got %q", e.Target)
	}
	set := addrSet(inj.tgt.MT.Addrs())
	ls.rules = append(ls.rules,
		&lossRule{start: e.Start, end: e.End(), src: set, model: blockAll{}},
		&lossRule{start: e.Start, end: e.End(), dst: set, model: blockAll{}})
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.Start, func() { inj.emit(e.Start, "restart", e) })
	//cold fault bookkeeping: rare event, logging allocation tolerated
	inj.tgt.Env.At(e.End(), func() {
		if inj.tgt.Reconnect != nil {
			inj.tgt.Reconnect()
		}
		inj.emit(e.End(), "restart-done", e)
	})
	return nil
}

// resolveAddrs maps a spec target to fabric addresses. nil means
// wildcard ("*").
func (inj *Injector) resolveAddrs(target string) ([]netsim.Addr, error) {
	switch {
	case target == "*":
		return nil, nil
	case target == "mt":
		addrs := inj.tgt.MT.Addrs()
		if len(addrs) == 0 {
			return nil, fmt.Errorf("middle tier has no fabric addresses")
		}
		return addrs, nil
	case strings.HasPrefix(target, "mt"):
		n, err := strconv.Atoi(target[2:])
		addrs := inj.tgt.MT.Addrs()
		if err != nil || n < 0 || n >= len(addrs) {
			return nil, fmt.Errorf("bad middle-tier port %q", target)
		}
		return addrs[n : n+1], nil
	default:
		addr := netsim.Addr(target)
		if inj.tgt.Fabric.Port(addr) == nil {
			return nil, fmt.Errorf("no fabric port at %q", target)
		}
		return []netsim.Addr{addr}, nil
	}
}

// storageIndex parses "ssN" and bounds-checks it.
func (inj *Injector) storageIndex(target string) (int, error) {
	if !strings.HasPrefix(target, "ss") {
		return 0, fmt.Errorf("crash targets a storage server (ssN), got %q", target)
	}
	n, err := strconv.Atoi(target[2:])
	if err != nil || n < 0 || n >= len(inj.tgt.Storage) {
		return 0, fmt.Errorf("no storage server %q (%d attached)", target, len(inj.tgt.Storage))
	}
	return n, nil
}

// splitLink splits a directional "a->b" target.
func splitLink(target string) (src, dst string, ok bool) {
	i := strings.Index(target, "->")
	if i < 0 {
		return "", "", false
	}
	return strings.TrimSpace(target[:i]), strings.TrimSpace(target[i+2:]), true
}

// Report renders the schedule plus the middle tier's failure counters.
func (inj *Injector) Report() *metrics.Table {
	t := metrics.NewTable("fault schedule", "fault", "target", "window", "param")
	for _, e := range inj.sched.Events {
		param := "-"
		if e.Param != 0 { //detcheck:floateq exact zero means "param unset", never computed
			param = strconv.FormatFloat(e.Param, 'g', -1, 64)
		}
		t.AddRow(e.Kind.String(), e.Target,
			fmt.Sprintf("%.1f-%.1f ms", e.Start*1e3, e.End()*1e3), param)
	}
	mt := inj.tgt.MT
	t.AddNote("middle tier: %d degraded writes, %d unroutable, %d replicate retries (%.0f bytes), %d engine fallbacks, %d engine reroutes, %.0f rebuild bytes",
		mt.Degraded, mt.Unroutable, mt.ReplicateRetries, mt.RetryBytes,
		mt.EngineFallbacks, mt.EngineReroutes, mt.RebuildBytes)
	return t
}
