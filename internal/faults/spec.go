// Package faults is the deterministic fault-injection subsystem: it
// parses seed-reproducible campaign schedules of (time, target, fault,
// duration) events and replays them against a running cluster in
// virtual time. Same seed + same spec → bit-identical runs, so a
// fail-over bug found in a campaign replays under the debugger.
//
// The spec grammar is a semicolon-separated list of events:
//
//	kind:target@start+duration[:param]
//
// where kind is one of
//
//	crash     — fail-stop a storage server; its store is lost and
//	            rebuilt from surviving replicas on recovery
//	loss      — sustained Bernoulli packet loss (param = drop prob)
//	burstloss — bursty Gilbert-Elliott loss (param = drop prob inside
//	            a burst; bursts start/stop with fixed probabilities)
//	degrade   — scale a port's link rate (param = fraction of the
//	            original rate, e.g. 0.25)
//	engine    — fail compression engines (middle tier falls back to
//	            raw frames or reroutes to a surviving engine)
//	restart   — blackhole the middle tier's ports for the window and
//	            reconnect broken transports afterwards
//
// and target is a storage server ("ss1"), a client ("vm0"), the middle
// tier ("mt", or "mt1" for one port/engine), a directional link
// ("vm0->mt"), or "*" (loss kinds only). start and duration use Go
// duration syntax ("4ms", "1.5ms").
//
// Example campaign:
//
//	loss:vm0->mt@4ms+6ms:0.03;crash:ss1@8ms+6ms;degrade:ss2@16ms+4ms:0.25
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault types.
type Kind int

// The fault kinds of the spec grammar.
const (
	Crash Kind = iota
	Loss
	BurstLoss
	Degrade
	Engine
	Restart
)

var kindNames = [...]string{"crash", "loss", "burstloss", "degrade", "engine", "restart"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var kindByName = map[string]Kind{
	"crash": Crash, "loss": Loss, "burstloss": BurstLoss,
	"degrade": Degrade, "engine": Engine, "restart": Restart,
}

// Event is one scheduled fault.
type Event struct {
	Kind     Kind
	Target   string
	Start    float64 // seconds of virtual time
	Duration float64
	// Param is the kind-specific knob: drop probability for loss kinds,
	// rate fraction for degrade. Zero elsewhere.
	Param float64
}

// End is the instant the fault clears.
func (e Event) End() float64 { return e.Start + e.Duration }

// String renders the event back in spec grammar.
func (e Event) String() string {
	s := fmt.Sprintf("%s:%s@%v+%v", e.Kind, e.Target,
		time.Duration(e.Start*1e9), time.Duration(e.Duration*1e9))
	if e.Param != 0 { //detcheck:floateq exact zero means "param unset", never computed
		s += ":" + strconv.FormatFloat(e.Param, 'g', -1, 64)
	}
	return s
}

// Schedule is a parsed campaign, sorted by start time.
type Schedule struct {
	Events []Event
}

// String renders the schedule back in spec grammar.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// FirstStart is the earliest fault instant (0 for an empty schedule).
func (s *Schedule) FirstStart() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[0].Start
}

// LastEnd is the latest fault-clear instant.
func (s *Schedule) LastEnd() float64 {
	end := 0.0
	for _, e := range s.Events {
		if e.End() > end {
			end = e.End()
		}
	}
	return end
}

// Parse builds a Schedule from a spec string. Events come back sorted
// by (start, spec order) so injection and reporting are deterministic
// regardless of how the spec was written.
func Parse(spec string) (*Schedule, error) {
	sched := &Schedule{}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ev, err := parseEvent(item)
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", item, err)
		}
		sched.Events = append(sched.Events, ev)
	}
	sort.SliceStable(sched.Events, func(i, j int) bool {
		return sched.Events[i].Start < sched.Events[j].Start
	})
	return sched, nil
}

// MustParse is Parse for known-good literals (tests, default campaigns).
func MustParse(spec string) *Schedule {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

func parseEvent(item string) (Event, error) {
	var ev Event
	colon := strings.Index(item, ":")
	if colon < 0 {
		return ev, fmt.Errorf("missing kind separator, want kind:target@start+duration")
	}
	kind, ok := kindByName[strings.ToLower(item[:colon])]
	if !ok {
		return ev, fmt.Errorf("unknown fault kind %q", item[:colon])
	}
	ev.Kind = kind
	rest := item[colon+1:]

	at := strings.LastIndex(rest, "@")
	if at < 0 {
		return ev, fmt.Errorf("missing @start")
	}
	ev.Target = strings.TrimSpace(rest[:at])
	if ev.Target == "" {
		return ev, fmt.Errorf("empty target")
	}
	timing := rest[at+1:]

	// Optional :param after the duration.
	if c := strings.Index(timing, ":"); c >= 0 {
		p, err := strconv.ParseFloat(strings.TrimSpace(timing[c+1:]), 64)
		if err != nil {
			return ev, fmt.Errorf("bad param: %v", err)
		}
		ev.Param = p
		timing = timing[:c]
	}
	plus := strings.Index(timing, "+")
	if plus < 0 {
		return ev, fmt.Errorf("missing +duration")
	}
	start, err := parseSeconds(timing[:plus])
	if err != nil {
		return ev, fmt.Errorf("bad start: %v", err)
	}
	dur, err := parseSeconds(timing[plus+1:])
	if err != nil {
		return ev, fmt.Errorf("bad duration: %v", err)
	}
	if start < 0 || dur <= 0 {
		return ev, fmt.Errorf("window must have start >= 0 and duration > 0")
	}
	ev.Start, ev.Duration = start, dur

	switch ev.Kind {
	case Loss, BurstLoss:
		if ev.Param == 0 { //detcheck:floateq exact zero means "param omitted in the spec"
			ev.Param = 0.05
		}
		if ev.Param < 0 || ev.Param > 1 {
			return ev, fmt.Errorf("loss probability %g out of [0,1]", ev.Param)
		}
	case Degrade:
		if ev.Param == 0 { //detcheck:floateq exact zero means "param omitted in the spec"
			ev.Param = 0.5
		}
		if ev.Param <= 0 || ev.Param > 1 {
			return ev, fmt.Errorf("rate fraction %g out of (0,1]", ev.Param)
		}
	default:
		if ev.Param != 0 { //detcheck:floateq exact zero means "param omitted in the spec"
			return ev, fmt.Errorf("%s takes no param", ev.Kind)
		}
	}
	if ev.Target == "*" && ev.Kind != Loss && ev.Kind != BurstLoss {
		return ev, fmt.Errorf("wildcard target only valid for loss kinds")
	}
	return ev, nil
}

func parseSeconds(s string) (float64, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, err
	}
	return d.Seconds(), nil
}
