package faults

import (
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/storage"
)

// testTarget is the minimal target for arm-time validation: a fabric
// with one client port and two storage servers, no middle tier.
func testTarget() Target {
	e := sim.NewEnv()
	f := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6, MTU: 4096})
	f.NewPort("vm0", 1e9)
	// Only the slice length is consulted at arm time.
	servers := make([]*storage.Server, 2)
	return Target{Env: e, Fabric: f, Storage: servers, Seed: 1}
}

func TestArmValidation(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"crash:ss5@1ms+1ms", "no storage server"},
		{"crash:vm0@1ms+1ms", "crash targets a storage server"},
		{"loss:ghost@1ms+1ms:0.1", "no fabric port"},
		{"loss:ghost->vm0@1ms+1ms:0.1", "no fabric port"},
		{"degrade:ghost@1ms+1ms:0.5", "no fabric port"},
		{"engine:vm0@1ms+1ms", "engine faults target the middle tier"},
		{"restart:vm0@1ms+1ms", "restart targets the middle tier"},
	}
	for _, tc := range cases {
		inj := New(testTarget(), MustParse(tc.spec))
		err := inj.Arm()
		if err == nil {
			t.Errorf("Arm(%q) = nil error, want one mentioning %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Arm(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestArmTwiceRejected(t *testing.T) {
	inj := New(testTarget(), MustParse("loss:vm0@1ms+1ms:0.1"))
	if err := inj.Arm(); err != nil {
		t.Fatalf("first Arm: %v", err)
	}
	if err := inj.Arm(); err == nil || !strings.Contains(err.Error(), "already armed") {
		t.Fatalf("second Arm = %v, want already-armed error", err)
	}
}

func TestLossRuleWindowAndEndpoints(t *testing.T) {
	a, b := netsim.Addr("a"), netsim.Addr("b")
	rule := &lossRule{
		start: 1e-3, end: 2e-3,
		src: addrSet([]netsim.Addr{a}), dst: addrSet([]netsim.Addr{b}),
		model: blockAll{},
	}
	msg := &netsim.Message{Src: a, Dst: b}
	if rule.matches(0.5e-3, msg) {
		t.Fatal("matched before the window opened")
	}
	if !rule.matches(1.5e-3, msg) {
		t.Fatal("did not match inside the window")
	}
	if rule.matches(2e-3, msg) {
		t.Fatal("matched at/after the window closed")
	}
	if rule.matches(1.5e-3, &netsim.Message{Src: b, Dst: a}) {
		t.Fatal("matched the reverse direction")
	}
	// Wildcard endpoints (nil sets) match anything inside the window.
	wild := &lossRule{start: 1e-3, end: 2e-3, model: blockAll{}}
	if !wild.matches(1.5e-3, &netsim.Message{Src: b, Dst: a}) {
		t.Fatal("wildcard rule did not match")
	}
}

func TestLossSetChainsPreviousPredicate(t *testing.T) {
	e := sim.NewEnv()
	f := netsim.NewFabric(e, netsim.Config{WireLatency: 1e-6, MTU: 4096})
	prevCalled := false
	f.SetLossFn(func(m *netsim.Message) bool { prevCalled = true; return false })

	ls := &lossSet{env: e, rules: []*lossRule{
		{start: 0, end: 1, model: blockAll{}},
	}}
	ls.install(f)

	fn := f.LossFn()
	if !fn(&netsim.Message{Src: "a", Dst: "b"}) {
		t.Fatal("blockAll rule did not drop")
	}
	if !prevCalled {
		t.Fatal("previously installed LossFn was not consulted")
	}
}
