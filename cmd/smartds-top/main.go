// Command smartds-top is the observability dashboard for run
// artifacts: it renders the run table, fired SLO alerts, and the top-K
// hottest time series (with unicode sparklines when full series data
// is available) from the files smartds-bench / smartds-sim write.
//
// Usage:
//
//	smartds-top -report report.json                     # static snapshot
//	smartds-top -report report.json -series series.json # with sparklines
//	smartds-top -report report.json -k 10 -follow 2s    # live view
//
// Without -follow the output is a single static snapshot whose bytes
// are a pure function of the input files — CI archives it next to the
// report. With -follow the screen refreshes from the files on every
// interval, tailing a concurrently-running bench.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/telemetry"
)

func main() {
	reportPath := flag.String("report", "", "run report JSON (smartds-bench -report)")
	seriesPath := flag.String("series", "", "sampled series JSON (smartds-bench -series-json); enables sparklines")
	topK := flag.Int("k", 8, "number of hottest series to show")
	follow := flag.Duration("follow", 0, "refresh interval for live tailing; 0 renders one static snapshot")
	flag.Parse()

	if *reportPath == "" {
		fmt.Fprintln(os.Stderr, "smartds-top: -report is required")
		flag.PrintDefaults()
		os.Exit(2)
	}

	for {
		var buf strings.Builder
		if err := render(&buf, *reportPath, *seriesPath, *topK); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *follow <= 0 {
			io.WriteString(os.Stdout, buf.String())
			return
		}
		// Clear screen + home, then one atomic write per frame.
		io.WriteString(os.Stdout, "\x1b[2J\x1b[H"+buf.String())
		time.Sleep(*follow)
	}
}

// seriesFile mirrors telemetry.WriteSeriesJSON's on-disk layout.
type seriesFile struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Digest telemetry.Digest  `json:"digest"`
	Points []telemetry.Point `json:"points"`
}

// render draws one full snapshot into w from the artifact files.
func render(w io.Writer, reportPath, seriesPath string, topK int) error {
	rep, err := telemetry.LoadReport(reportPath)
	if err != nil {
		return err
	}
	var series []seriesFile
	if seriesPath != "" {
		data, err := os.ReadFile(seriesPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &series); err != nil {
			return fmt.Errorf("smartds-top: parse %s: %w", seriesPath, err)
		}
	}

	fmt.Fprintf(w, "smartds-top — report %q seed %d quick=%v (%d runs)\n\n",
		rep.Name, rep.Seed, rep.Quick, len(rep.Runs))

	runs := metrics.NewTable("runs", "run", "requests", "errors", "req/s", "throughput", "p50", "p999", "alerts")
	for _, rr := range rep.Runs {
		runs.AddRow(rr.Key(), rr.Requests, rr.Errors,
			fmt.Sprintf("%.0f", rr.ReqPerSec),
			metrics.FormatGbps(rr.ThroughputBps),
			metrics.FormatDuration(rr.Latency.P50),
			metrics.FormatDuration(rr.Latency.P999),
			len(rr.Alerts))
	}
	fmt.Fprintln(w, runs.String())

	renderAlerts(w, rep)
	renderBlame(w, rep)
	renderTop(w, rep, series, topK)
	renderExemplars(w, rep)
	return nil
}

// renderBlame prints each run's latency blame panel: the top stages of
// the critical-path attribution with a bar per mean share, then the
// p999 exemplar's segment drill-down. Skipped entirely for reports
// recorded without tracing.
func renderBlame(w io.Writer, rep *telemetry.Report) {
	any := false
	for _, rr := range rep.Runs {
		if rr.Critpath != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	tbl := metrics.NewTable("latency blame (critical-path share of client latency)",
		"run", "stage", "kind", "mean%", "p999%", "share")
	const maxStages = 4
	for _, rr := range rep.Runs {
		cp := rr.Critpath
		if cp == nil {
			continue
		}
		for i, st := range cp.Stages {
			if i >= maxStages {
				break
			}
			kind := "service"
			if st.Wait {
				kind = "wait"
			}
			tbl.AddRow(rr.Key(), st.Stage, kind,
				fmt.Sprintf("%.1f%%", st.MeanFrac*100),
				fmt.Sprintf("%.1f%%", st.P999Frac*100),
				shareBar(st.MeanFrac, 12))
		}
	}
	fmt.Fprintln(w, tbl.String())

	ex := metrics.NewTable("p999 exemplars (worst sampled request per run)",
		"run", "trace", "e2e", "critical path")
	for _, rr := range rep.Runs {
		cp := rr.Critpath
		if cp == nil || cp.P999 == nil {
			continue
		}
		var b strings.Builder
		for i, seg := range cp.P999.Segments {
			if i > 0 {
				b.WriteString(" → ")
			}
			fmt.Fprintf(&b, "%s %.0f%%", seg.Stage, seg.Frac*100)
		}
		ex.AddRow(rr.Key(), cp.P999.TraceID,
			metrics.FormatDuration(cp.P999.E2E), b.String())
	}
	fmt.Fprintln(w, ex.String())
}

// shareBar renders a 0..1 fraction as a fixed-width bar.
func shareBar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// renderAlerts prints the fired-alert section (always present, so a
// clean run visibly says so).
func renderAlerts(w io.Writer, rep *telemetry.Report) {
	fired := 0
	tbl := metrics.NewTable("SLO alerts", "run", "slo", "kind", "at", "burn", "detail")
	for _, rr := range rep.Runs {
		for _, al := range rr.Alerts {
			fired++
			tbl.AddRow(rr.Key(), al.SLO, al.Kind,
				metrics.FormatDuration(al.At),
				fmt.Sprintf("%.3gx/%.3gx", al.BurnShort, al.BurnLong),
				al.Detail)
		}
	}
	if fired == 0 {
		fmt.Fprintln(w, "SLO alerts: none fired")
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintln(w, tbl.String())
}

// topEntry is one ranked series row.
type topEntry struct {
	name   string
	labels string
	digest telemetry.Digest
	points []telemetry.Point
}

// renderTop ranks series by mean magnitude and prints the top K with
// sparklines (from full series data when available, digests otherwise).
func renderTop(w io.Writer, rep *telemetry.Report, series []seriesFile, topK int) {
	var entries []topEntry
	if len(series) > 0 {
		for _, s := range series {
			entries = append(entries, topEntry{
				name: s.Name, labels: labelString(s.Labels), digest: s.Digest, points: s.Points,
			})
		}
	} else {
		for _, s := range rep.Series {
			entries = append(entries, topEntry{
				name: s.Name, labels: labelString(s.Labels), digest: s.Digest,
			})
		}
	}
	if len(entries) == 0 {
		fmt.Fprintln(w, "series: none sampled")
		return
	}
	// Rank hot-first; ties break on (name, labels) so equal-magnitude
	// series render in a deterministic order.
	sort.Slice(entries, func(i, j int) bool {
		mi, mj := math.Abs(entries[i].digest.Mean), math.Abs(entries[j].digest.Mean)
		if mi != mj {
			return mi > mj
		}
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	if topK > 0 && len(entries) > topK {
		entries = entries[:topK]
	}
	tbl := metrics.NewTable(fmt.Sprintf("top %d series by mean", len(entries)),
		"series", "last", "mean", "max", "trend")
	for _, e := range entries {
		tbl.AddRow(e.name+e.labels,
			fmt.Sprintf("%.4g", e.digest.Last),
			fmt.Sprintf("%.4g", e.digest.Mean),
			fmt.Sprintf("%.4g", e.digest.Max),
			sparkline(e.points, 24))
	}
	fmt.Fprintln(w, tbl.String())
}

// renderExemplars lists bucket→trace links when the report carries any.
func renderExemplars(w io.Writer, rep *telemetry.Report) {
	if len(rep.Exemplars) == 0 {
		return
	}
	tbl := metrics.NewTable("exemplars (latency bucket → kept trace)",
		"metric", "le", "value", "trace_id")
	for _, ex := range rep.Exemplars {
		tbl.AddRow(ex.Name+labelString(ex.Labels), ex.Le, fmt.Sprintf("%.4g", ex.Value), ex.TraceID)
	}
	fmt.Fprintln(w, tbl.String())
}

// sparkBars is the eight-level unicode bar ramp.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders up to width points as a unicode bar strip, scaled
// min..max over the window ("-" when no point data is available).
func sparkline(pts []telemetry.Point, width int) string {
	if len(pts) == 0 {
		return "-"
	}
	if len(pts) > width {
		// Downsample by striding from the tail so the most recent
		// points always survive.
		stride := (len(pts) + width - 1) / width
		var kept []telemetry.Point
		for i := len(pts) - 1; i >= 0; i -= stride {
			kept = append(kept, pts[i])
		}
		for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
			kept[l], kept[r] = kept[r], kept[l]
		}
		pts = kept
	}
	lo, hi := pts[0].Value, pts[0].Value
	for _, p := range pts {
		lo, hi = math.Min(lo, p.Value), math.Max(hi, p.Value)
	}
	var b strings.Builder
	for _, p := range pts {
		idx := 0
		if hi > lo {
			idx = int((p.Value - lo) / (hi - lo) * float64(len(sparkBars)-1))
		}
		b.WriteRune(sparkBars[idx])
	}
	return b.String()
}

// labelString renders a label map deterministically (sorted keys).
func labelString(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(m[k])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}
