package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/telemetry"
)

// writeFixture builds a small report through the real telemetry
// pipeline plus a hand-written series file matching the
// WriteSeriesJSON layout, so the test exercises the same artifact
// shapes the binaries produce.
func writeFixture(t *testing.T, dir string) (reportPath, seriesPath string) {
	t.Helper()
	reg := telemetry.NewRegistry()
	sc := reg.NewRun("top-test", "SmartDS-1", 42)
	sc.CounterFunc("smartds_demo_total", "Demo counter.", nil, func() float64 { return 7 })
	sc.RecordResults(8e-3, 1000, 0, 5e9, 125000, metrics.Summary{
		Count: 1000, Mean: 40e-6, P50: 35e-6, P99: 60e-6, P999: 2e-3, Max: 3e-3,
	})
	sc.RecordAlerts([]telemetry.Alert{{
		SLO: "ttr:1ms", Kind: "ttr", Severity: "page", At: 9e-3,
		BurnShort: 2, BurnLong: 2, Detail: "restart:mt ttr 2ms over ceiling 1ms",
	}})

	reportPath = filepath.Join(dir, "report.json")
	seriesPath = filepath.Join(dir, "series.json")
	rep := reg.BuildReport("top-test", 42, true, nil)
	f, err := os.Create(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteReport(f, rep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	series := `[
 {
  "name": "smartds_demo_total",
  "labels": {"design": "SmartDS-1", "exp": "top-test"},
  "digest": {"points": 5, "first": 0, "last": 4, "min": 0, "max": 4, "mean": 2},
  "points": [
   {"t": 0.0001, "v": 0}, {"t": 0.0002, "v": 1}, {"t": 0.0003, "v": 2},
   {"t": 0.0004, "v": 3}, {"t": 0.0005, "v": 4}
  ]
 }
]
`
	if err := os.WriteFile(seriesPath, []byte(series), 0o644); err != nil {
		t.Fatal(err)
	}
	return reportPath, seriesPath
}

// TestTopSnapshotDeterministic pins that two renders of the same
// artifacts are byte-identical (the CI snapshot contract) and carry
// the runs, alerts, and sparkline sections.
func TestTopSnapshotDeterministic(t *testing.T) {
	dir := t.TempDir()
	reportPath, seriesPath := writeFixture(t, dir)

	snap := func() string {
		var b strings.Builder
		if err := render(&b, reportPath, seriesPath, 8); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := snap(), snap()
	if a != b {
		t.Fatalf("same artifacts rendered different bytes:\n%q\n%q", a, b)
	}
	for _, want := range []string{
		"top-test/SmartDS-1#0",
		"ttr:1ms",
		"restart:mt ttr 2ms over ceiling 1ms",
		"smartds_demo_total",
		"▁", // sparkline engaged
	} {
		if !strings.Contains(a, want) {
			t.Errorf("snapshot missing %q:\n%s", want, a)
		}
	}
}

// TestTopNoAlertsNoSeries covers the clean-run rendering: an explicit
// "none fired" alert section and digest-only rows without sparklines.
func TestTopNoAlertsNoSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := reg.NewRun("clean", "CPU-only", 1)
	sc.RecordResults(1e-3, 10, 0, 1e9, 10000, metrics.Summary{Count: 10})
	reportPath := filepath.Join(t.TempDir(), "report.json")
	f, err := os.Create(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteReport(f, reg.BuildReport("clean", 1, true, nil)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var b strings.Builder
	if err := render(&b, reportPath, "", 4); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "SLO alerts: none fired") {
		t.Errorf("clean run should say no alerts fired:\n%s", out)
	}
}

// TestSparkline pins the bar scaling and downsampling behavior.
func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "-" {
		t.Fatalf("empty sparkline %q, want -", got)
	}
	pts := []telemetry.Point{{At: 0, Value: 0}, {At: 1, Value: 1}, {At: 2, Value: 2}}
	if got := sparkline(pts, 10); got != "▁▄█" {
		t.Fatalf("ramp sparkline %q, want ▁▄█", got)
	}
	// Constant series renders all-low, not NaN garbage.
	flat := []telemetry.Point{{Value: 5}, {Value: 5}, {Value: 5}}
	if got := sparkline(flat, 10); got != "▁▁▁" {
		t.Fatalf("flat sparkline %q", got)
	}
	// Downsampling keeps the most recent point.
	var long []telemetry.Point
	for i := 0; i < 100; i++ {
		long = append(long, telemetry.Point{At: float64(i), Value: float64(i)})
	}
	got := sparkline(long, 10)
	if len([]rune(got)) > 10 || !strings.HasSuffix(got, "█") {
		t.Fatalf("downsampled sparkline %q should end at the max", got)
	}
}
