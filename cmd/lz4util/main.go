// Command lz4util compresses or decompresses files with this
// repository's from-scratch LZ4 implementation, using the same frame
// format the storage servers persist.
//
// Usage:
//
//	lz4util -c  [-level 3] [-in file] [-out file]   # compress one frame
//	lz4util -c -stream [-block 65536] ...           # block-streamed container
//	lz4util -d  [-in file] [-out file]              # decompress (either format)
//	lz4util -stat -in file                          # frame info
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/disagg/smartds/internal/lz4"
)

func main() {
	compress := flag.Bool("c", false, "compress")
	decompress := flag.Bool("d", false, "decompress")
	stat := flag.Bool("stat", false, "print frame header info")
	level := flag.Int("level", int(lz4.LevelDefault), "compression level 1..9")
	stream := flag.Bool("stream", false, "use the block-streamed container")
	blockSize := flag.Int("block", lz4.DefaultBlockSize, "stream block size")
	inPath := flag.String("in", "-", "input file (- for stdin)")
	outPath := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()

	data, err := readAll(*inPath)
	if err != nil {
		fatal(err)
	}

	switch {
	case *compress && *stream:
		var buf bytes.Buffer
		w, err := lz4.NewWriter(&buf, lz4.Level(*level), *blockSize)
		if err != nil {
			fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		if err := writeAll(*outPath, buf.Bytes()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d -> %d bytes (%.2fx, %d-byte blocks)\n",
			len(data), buf.Len(), lz4.Ratio(len(data), buf.Len()), *blockSize)
	case *compress:
		frame, err := lz4.EncodeFrame(data, lz4.Level(*level))
		if err != nil {
			fatal(err)
		}
		if err := writeAll(*outPath, frame); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d -> %d bytes (%.2fx)\n",
			len(data), len(frame), lz4.Ratio(len(data), len(frame)))
	case *decompress && *stream:
		orig, err := io.ReadAll(lz4.NewReader(bytes.NewReader(data)))
		if err != nil {
			fatal(err)
		}
		if err := writeAll(*outPath, orig); err != nil {
			fatal(err)
		}
	case *decompress:
		orig, err := lz4.DecodeFrame(data)
		if err != nil {
			fatal(err)
		}
		if err := writeAll(*outPath, orig); err != nil {
			fatal(err)
		}
	case *stat:
		fi, err := lz4.ParseFrameHeader(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("original: %d bytes\ncompressed: %d bytes\nratio: %.2fx\nstored raw: %v\ncrc32c: %08x\n",
			fi.OrigSize, fi.CompSize, lz4.Ratio(fi.OrigSize, fi.CompSize), fi.Stored, fi.CRC)
	default:
		fmt.Fprintln(os.Stderr, "one of -c, -d, -stat required")
		os.Exit(2)
	}
}

func readAll(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func writeAll(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lz4util:", err)
	os.Exit(1)
}
