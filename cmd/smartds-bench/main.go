// Command smartds-bench regenerates the paper's evaluation tables and
// figures from the simulated system.
//
// Usage:
//
//	smartds-bench -exp fig7          # one experiment
//	smartds-bench -exp all           # the whole evaluation
//	smartds-bench -exp fig10 -quick  # fast, modeled-payload mode
//	smartds-bench -list              # available experiment ids
//
// Telemetry artifacts (all deterministic for a fixed seed):
//
//	-report report.json      # machine-readable run report (regression gate input)
//	-metrics metrics.prom    # OpenMetrics snapshot of every instrument
//	-series-csv series.csv   # sampled time series, long-form CSV
//	-series-json series.json # sampled time series with digests, JSON
//
// Observability (shared with smartds-sim via internal/cliflags):
//
//	-trace-sample 0.01       # head-sample 1% of trace spans (tail kept)
//	-slo "avail:99.9;ttr:10ms"  # burn-rate alerts into the report
//	-log-level info          # structured sim-time event log on stderr
//	-label-budget 64         # fold excess label sets into overflow series
//
// Profiling: -cpuprofile / -memprofile write pprof files covering the
// experiment execution.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/disagg/smartds/internal/cliflags"
	"github.com/disagg/smartds/internal/experiments"
	"github.com/disagg/smartds/internal/telemetry"
)

// csvOut switches table rendering to CSV.
var csvOut bool

func main() {
	common := cliflags.Register(flag.CommandLine)
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "shrink windows and use modeled payloads")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.BoolVar(&csvOut, "csv", false, "emit tables as CSV")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	proto, err := common.Protocol()
	if err != nil {
		fatal(err)
	}
	specs, err := common.SLO()
	if err != nil {
		fatal(err)
	}
	opt := experiments.Options{Quick: *quick, Seed: common.Seed, Breakdown: common.Breakdown,
		FaultSpec: common.FaultSpec, Replication: proto, SLO: specs}
	opt.Trace = common.NewTracer(false)
	opt.CritpathFolded = common.NewFolded()
	opt.Telemetry = common.NewRegistry()
	// The event-log clock must follow whichever cluster is currently
	// running; experiments swap the active env in as they build them.
	var clock func() float64
	opt.Log = common.NewLogger(os.Stderr, func() float64 {
		if clock == nil {
			return 0
		}
		return clock()
	})
	if opt.Log != nil {
		opt.OnCluster = func(now func() float64) { clock = now }
	}
	start := time.Now()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	if *exp == "all" {
		for _, name := range experiments.Names() {
			runOne(name, opt)
		}
	} else {
		runOne(*exp, opt)
	}
	// Capture wall time and allocation counts over just the experiment
	// execution, before artifact serialization muddies them.
	wall := time.Since(start).Seconds()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	if common.TraceFile != "" {
		if err := writeFile(common.TraceFile, opt.Trace.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", common.TraceFile)
	}
	if common.FoldedFile != "" {
		if err := writeFile(common.FoldedFile, opt.CritpathFolded.Write); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "critical-path folded stacks written to %s\n", common.FoldedFile)
	}
	if common.ReportFile != "" {
		rep := opt.Telemetry.BuildReport(*exp, common.Seed, *quick, map[string]string{
			"exp":          *exp,
			"quick":        strconv.FormatBool(*quick),
			"breakdown":    strconv.FormatBool(common.Breakdown),
			"faults":       common.FaultSpec,
			"replication":  proto.String(),
			"slo":          common.SLOSpec,
			"trace_sample": strconv.FormatFloat(common.TraceSample, 'g', -1, 64),
		})
		// SimPerf is wall-clock (non-deterministic), so it is attached
		// here — after BuildReport — and never inside the registry, which
		// must stay a pure function of the seed.
		var events uint64
		for _, rr := range rep.Runs {
			events += rr.SimEvents
		}
		if events > 0 && wall > 0 {
			allocs := ms1.Mallocs - ms0.Mallocs
			rep.SimPerf = &telemetry.SimPerf{
				Events:         events,
				WallSeconds:    wall,
				EventsPerSec:   float64(events) / wall,
				Allocs:         allocs,
				AllocsPerEvent: float64(allocs) / float64(events),
			}
			fmt.Fprintf(os.Stderr, "sim perf: %d events in %.2fs = %.0f events/sec, %.2f allocs/event\n",
				events, wall, rep.SimPerf.EventsPerSec, rep.SimPerf.AllocsPerEvent)
		}
		if err := writeFile(common.ReportFile, func(w io.Writer) error {
			return telemetry.WriteReport(w, rep)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "run report written to %s\n", common.ReportFile)
	}
	if err := common.WriteArtifacts(opt.Telemetry, writeFile); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		runtime.GC()
		if err := writeFile(*memProfile, pprof.WriteHeapProfile); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func runOne(name string, opt experiments.Options) {
	t0 := time.Now()
	tables, err := experiments.Run(name, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, tbl := range tables {
		if csvOut {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	fmt.Fprintf(os.Stderr, "[%s done in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
}
