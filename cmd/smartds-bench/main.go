// Command smartds-bench regenerates the paper's evaluation tables and
// figures from the simulated system.
//
// Usage:
//
//	smartds-bench -exp fig7          # one experiment
//	smartds-bench -exp all           # the whole evaluation
//	smartds-bench -exp fig10 -quick  # fast, modeled-payload mode
//	smartds-bench -list              # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/disagg/smartds/internal/experiments"
	"github.com/disagg/smartds/internal/trace"
)

// csvOut switches table rendering to CSV.
var csvOut bool

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "shrink windows and use modeled payloads")
	seed := flag.Uint64("seed", 42, "root random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON file covering every cluster run")
	breakdown := flag.Bool("breakdown", false, "append per-stage latency breakdown tables (fig7, ext-reads)")
	faultSpec := flag.String("faults", "", "ext-faults campaign spec (kind:target@start+duration[:param];... — see internal/faults)")
	flag.BoolVar(&csvOut, "csv", false, "emit tables as CSV")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed, Breakdown: *breakdown, FaultSpec: *faultSpec}
	if *traceFile != "" {
		opt.Trace = trace.New(1 << 18)
	}
	start := time.Now()
	if *exp == "all" {
		for _, name := range experiments.Names() {
			runOne(name, opt)
		}
	} else {
		runOne(*exp, opt)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err == nil {
			err = opt.Trace.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceFile)
	}
	fmt.Fprintf(os.Stderr, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

func runOne(name string, opt experiments.Options) {
	t0 := time.Now()
	tables, err := experiments.Run(name, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, tbl := range tables {
		if csvOut {
			fmt.Printf("# %s\n%s\n", tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl.String())
		}
	}
	fmt.Fprintf(os.Stderr, "[%s done in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
}
