package main

import (
	"strings"
	"testing"
)

// TestMultichecker runs the full analyzer suite end-to-end against a
// fixture tree containing exactly one violation per analyzer and
// asserts each diagnostic fires with its expected message.
func TestMultichecker(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/tree/..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	wants := []struct{ file, analyzer, fragment string }{
		{"clock/clock.go", "wallclock", "wall-clock time.Now in simulation code"},
		{"randpkg/randpkg.go", "randsrc", "import of math/rand outside internal/rng"},
		{"maps/maps.go", "maporder", "append inside map iteration builds a slice in map order"},
		{"spawn/spawn.go", "simspawn", "bare go statement races the cooperative scheduler"},
		{"floats/floats.go", "floatacc", "floating-point == comparison"},
		// The observability-layer shapes: a logger formatting a label map
		// into the line buffer, and an SLO alert stamped off the host clock.
		{"evlogger/evlogger.go", "maporder", "call to ordered sink WriteString inside map iteration"},
		{"sloalerts/sloalerts.go", "wallclock", "wall-clock time.Now in simulation code"},
		// The interprocedural shapes: hotstage's roots are minted by
		// registrations against the tree's internal/sim package, so
		// these require the whole-program call graph.
		{"hotstage/hotstage.go", "hotalloc", "append may grow the backing array"},
		{"hotstage/hotstage.go", "hotalloc", "interface boxing of int allocates"},
		{"hotstage/hotstage.go", "simblock", "os.Open performs host I/O"},
		{"locks/locks.go", "lockorder", "locks.b while holding"},
		{"locks/locks.go", "lockorder", "locks.a while holding"},
		{"ackpath/ackpath.go", "errdrop", "silently discarded on an ack/durability path"},
		{"copies/copies.go", "mutexcopy", "by-value parameter copies"},
		{"gctune/gctune.go", "finalizer", "runtime.GC manipulates the collector/scheduler in host time"},
	}
	for _, w := range wants {
		found := false
		for _, line := range strings.Split(got, "\n") {
			if strings.Contains(line, w.file) &&
				strings.Contains(line, w.analyzer+": ") &&
				strings.Contains(line, w.fragment) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic for %s containing %q\noutput:\n%s", w.analyzer, w.file, w.fragment, got)
		}
	}
	if n := strings.Count(strings.TrimSpace(got), "\n") + 1; n != len(wants) {
		t.Errorf("diagnostic count = %d, want exactly %d\noutput:\n%s", n, len(wants), got)
	}
}

// TestMulticheckerCleanTree asserts a violation-free tree exits 0.
func TestMulticheckerCleanTree(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/clean/..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics on clean tree:\n%s", out.String())
	}
}

// TestWaiverAudit asserts -waiver-audit rejects both failure modes:
// a waiver naming an unknown analyzer key, and a waiver for a real
// analyzer that never suppresses a finding.
func TestWaiverAudit(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-waiver-audit", "./testdata/audit/..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	if !strings.Contains(got, `unknown waiver key "nosuchkey"`) {
		t.Errorf("no unknown-key audit error:\n%s", got)
	}
	if !strings.Contains(got, "//detcheck:wallclock suppresses no finding") {
		t.Errorf("no stale-waiver audit error:\n%s", got)
	}
	// Without the flag the same tree is silent: stale waivers are only
	// an error when the audit is requested.
	out.Reset()
	errb.Reset()
	if code := run([]string{"./testdata/audit/..."}, &out, &errb); code != 0 {
		t.Errorf("exit code without -waiver-audit = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
}

// TestWaiverAuditCleanOnUsedWaivers asserts the audit stays quiet for
// waivers that actually suppress findings (tree/internal/clock carries
// a used //detcheck:wallclock).
func TestWaiverAuditCleanOnUsedWaivers(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-waiver-audit", "./testdata/tree/..."}, &out, &errb)
	if code != 1 { // the tree's real findings still fail the run
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	if got := out.String(); strings.Contains(got, "waiver-audit:") {
		t.Errorf("audit errors on a tree whose waivers are all used:\n%s", got)
	}
}

// TestDisableAnalyzer asserts -<name>=false suppresses that analyzer
// and only that analyzer.
func TestDisableAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-wallclock=false", "./testdata/tree/..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	got := out.String()
	if strings.Contains(got, "wallclock: ") {
		t.Errorf("wallclock diagnostics present despite -wallclock=false:\n%s", got)
	}
	if !strings.Contains(got, "randsrc: ") {
		t.Errorf("randsrc diagnostics missing with -wallclock=false:\n%s", got)
	}
}

// TestVersionHandshake covers the go vet -vettool probe.
func TestVersionHandshake(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-V=full"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.HasPrefix(out.String(), "smartds-vet version ") {
		t.Errorf("version line = %q", out.String())
	}
}
