// Command smartds-vet is the determinism multichecker: it runs the
// detcheck analyzers (wallclock, randsrc, maporder, simspawn,
// floatacc, hotalloc, simblock, lockorder, errdrop, mutexcopy,
// finalizer) over the module and exits nonzero on any finding. The
// analyzers mechanically enforce the invariants behind the simulator's
// "whole experiments replay bit-for-bit" guarantee; see the
// "Determinism invariants" section of DESIGN.md.
//
// In the standalone mode the driver type-checks the whole package set
// and builds one interprocedural call graph over it (framework
// BuildCallGraph); the hotalloc/simblock/lockorder/errdrop analyzers
// consume it through Pass.CallGraph / Pass.Summaries. The go vet
// -vettool unit protocol sees one package at a time, so those
// analyzers are no-ops there; CI runs the standalone mode.
//
// Usage:
//
//	go run ./cmd/smartds-vet ./...          # whole tree (what CI runs)
//	go run ./cmd/smartds-vet ./internal/sim # one package
//	go run ./cmd/smartds-vet -maporder=false ./...
//	go run ./cmd/smartds-vet -randsrc.allow=internal/rng,internal/foo ./...
//	go run ./cmd/smartds-vet -waiver-audit ./...
//
// Each analyzer can be disabled with -<name>=false and configured via
// -<name>.<flag> options; allowlists live in these flag defaults, not
// in CI YAML. Individual findings are waived in code with a
// `//detcheck:<name> <reason>` comment on the flagged line or the line
// above it. With -waiver-audit the driver additionally fails on rotten
// waivers: directives naming no known analyzer, and directives that no
// longer suppress any finding.
//
// The binary also answers the `go vet -vettool` version handshake
// (-V=full), but the supported entry point is running it directly with
// package patterns as above: the standalone driver loads and
// type-checks packages itself, so it needs no export data from the go
// command.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/disagg/smartds/internal/analysis/errdrop"
	"github.com/disagg/smartds/internal/analysis/finalizer"
	"github.com/disagg/smartds/internal/analysis/floatacc"
	"github.com/disagg/smartds/internal/analysis/framework"
	"github.com/disagg/smartds/internal/analysis/hotalloc"
	"github.com/disagg/smartds/internal/analysis/load"
	"github.com/disagg/smartds/internal/analysis/lockorder"
	"github.com/disagg/smartds/internal/analysis/maporder"
	"github.com/disagg/smartds/internal/analysis/mutexcopy"
	"github.com/disagg/smartds/internal/analysis/randsrc"
	"github.com/disagg/smartds/internal/analysis/simblock"
	"github.com/disagg/smartds/internal/analysis/simspawn"
	"github.com/disagg/smartds/internal/analysis/wallclock"
)

// analyzers is the detcheck suite, in reporting order: the five
// per-package checks, then the interprocedural layer, then the
// concurrency-hygiene pair.
var analyzers = []*framework.Analyzer{
	wallclock.Analyzer,
	randsrc.Analyzer,
	maporder.Analyzer,
	simspawn.Analyzer,
	floatacc.Analyzer,
	hotalloc.Analyzer,
	simblock.Analyzer,
	lockorder.Analyzer,
	errdrop.Analyzer,
	mutexcopy.Analyzer,
	finalizer.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	// `tool -flags` is the go command asking for the flag schema; it
	// must be answered before normal flag parsing (no such flag exists).
	if len(args) == 1 && args[0] == "-flags" {
		printFlagsJSON(stdout)
		return 0
	}
	fs := flag.NewFlagSet("smartds-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	versionFlag := fs.String("V", "", "print version and exit (go vet -vettool handshake)")
	auditFlag := fs.Bool("waiver-audit", false,
		"fail on rotten //detcheck: directives (unknown waiver keys, waivers that no longer suppress anything)")
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer\n"+a.Doc)
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: smartds-vet [flags] [package patterns]\n\n")
		fmt.Fprintf(stderr, "Determinism multichecker for the SmartDS simulator. Analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		// The go command probes vettools with -V=full and expects
		// "name version devel buildID=<id>"; hashing our own binary
		// invalidates its vet cache whenever the checker changes.
		fmt.Fprintf(stdout, "smartds-vet version devel buildID=%s\n", selfID())
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		// go vet -vettool unit protocol: analyze one pre-compiled
		// package unit described by a JSON config.
		return runUnit(patterns[0], enabled, stdout, stderr)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "smartds-vet: %v\n", err)
		return 2
	}
	loader := load.NewLoader()
	pkgs, err := loader.Patterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "smartds-vet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "smartds-vet: no packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}

	// The interprocedural layer: one call graph over the whole loaded
	// package set, one fact store and one waiver audit shared by every
	// pass of the run.
	var units []framework.Unit
	for _, pkg := range pkgs {
		units = append(units, framework.Unit{
			Fset: pkg.Fset, Files: pkg.Files, PkgPath: pkg.PkgPath,
			Pkg: pkg.Types, Info: pkg.Info,
		})
	}
	cg := framework.BuildCallGraph(units)
	sums := framework.NewSummaries(cg)
	audit := framework.NewWaiverAudit()

	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "smartds-vet: %s: %v\n", pkg.PkgPath, terr)
			exit = 2
		}
		var diags []diagnostic
		for _, a := range analyzers {
			if !*enabled[a.Name] {
				continue
			}
			pass := newPass(a, pkg.Fset, pkg.Files, pkg.PkgPath, pkg.Types, pkg.Info,
				func(d diagnostic) { diags = append(diags, d) })
			pass.CallGraph, pass.Summaries, pass.Audit = cg, sums, audit
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "smartds-vet: %s: %s: %v\n", a.Name, pkg.PkgPath, err)
				exit = 2
			}
		}
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := pkg.Fset.Position(diags[i].d.Pos), pkg.Fset.Position(diags[j].d.Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
		for _, d := range diags {
			pos := pkg.Fset.Position(d.d.Pos)
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relTo(cwd, pos.Filename), pos.Line, pos.Column, d.analyzer, d.d.Message)
			if exit == 0 {
				exit = 1
			}
		}
	}
	if *auditFlag {
		if auditWaivers(pkgs, enabled, audit, cwd, stdout) && exit == 0 {
			exit = 1
		}
	}
	return exit
}

// auditWaivers checks every //detcheck: directive of the run against
// the suppression hits the analyzers recorded. A directive whose key
// no analyzer owns is a typo; a directive owned by an enabled analyzer
// that suppressed nothing is rot — both fail the build so waivers
// cannot silently outlive the code they blessed. Keys of disabled
// analyzers are skipped: they could not have fired this run.
func auditWaivers(pkgs []*load.Package, enabled map[string]*bool,
	audit *framework.WaiverAudit, cwd string, stdout io.Writer) bool {
	owner := map[string]string{}
	var known []string
	for _, a := range analyzers {
		for _, k := range a.WaiverKeys() {
			owner[k] = a.Name
			known = append(known, k)
		}
	}
	sort.Strings(known)
	bad := false
	for _, pkg := range pkgs {
		for _, d := range framework.Directives(pkg.Fset, pkg.Files) {
			o, ok := owner[d.Name]
			if !ok {
				fmt.Fprintf(stdout, "%s:%d: waiver-audit: unknown waiver key %q (known keys: %s)\n",
					relTo(cwd, d.File), d.Line, d.Name, strings.Join(known, ", "))
				bad = true
				continue
			}
			if !*enabled[o] {
				continue
			}
			if !audit.Used(d) {
				fmt.Fprintf(stdout, "%s:%d: waiver-audit: //detcheck:%s suppresses no finding; remove the stale waiver or fix its placement\n",
					relTo(cwd, d.File), d.Line, d.Name)
				bad = true
			}
		}
	}
	return bad
}

type diagnostic struct {
	analyzer string
	d        framework.Diagnostic
}

// newPass assembles a framework.Pass for one analyzer over one
// type-checked package, tagging reported diagnostics with the
// analyzer's name.
func newPass(a *framework.Analyzer, fset *token.FileSet, files []*ast.File, pkgPath string,
	pkg *types.Package, info *types.Info, report func(diagnostic)) *framework.Pass {
	return &framework.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		PkgPath:   pkgPath,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d framework.Diagnostic) { report(diagnostic{a.Name, d}) },
	}
}

// selfID returns a content hash of the running executable for the
// go command's tool-ID handshake.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x/%x", sum[:12], sum[:12])
}

// relTo shortens an absolute filename relative to the working
// directory when that produces a cleaner path.
func relTo(cwd, path string) string {
	if !strings.HasPrefix(path, cwd+string(os.PathSeparator)) {
		return path
	}
	return "." + strings.TrimPrefix(path, cwd)
}
