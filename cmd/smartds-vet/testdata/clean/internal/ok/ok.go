// Package ok holds no determinism violations.
package ok

import "sort"

// SortedKeys is the accepted append-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
