// Package clock violates the wallclock invariant.
package clock

import "time"

// Stamp leaks the host clock into simulation code.
func Stamp() int64 { return time.Now().UnixNano() }
