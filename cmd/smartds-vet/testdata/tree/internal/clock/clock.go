// Package clock violates the wallclock invariant.
package clock

import "time"

// Stamp leaks the host clock into simulation code.
func Stamp() int64 { return time.Now().UnixNano() }

// Banner stamps host-facing startup output; the value never reaches
// the simulation, so the waiver below is legitimate — and, unlike the
// ones in testdata/audit, it suppresses a real finding.
func Banner() int64 {
	return time.Now().Unix() //detcheck:wallclock host-facing banner outside replay
}
