// Package maps violates the maporder invariant.
package maps

// Keys returns map keys in Go's randomized iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
