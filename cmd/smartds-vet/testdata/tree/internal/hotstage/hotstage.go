// Package hotstage violates the hot-path invariants across a package
// boundary: its roots are minted by registrations against the tree's
// internal/sim package, so these findings only exist if the driver
// builds one call graph over the whole package set.
package hotstage

import (
	"os"

	"github.com/disagg/smartds/cmd/smartds-vet/testdata/tree/internal/sim"
)

var buf []int
var sink interface{}

// stage is on the declared zero-alloc contract.
//
//hot:per-message stage, zero-alloc contract
func stage(v int) {
	buf = append(buf, v)
}

// Register wires the callbacks into the event loop.
func Register(e *sim.Env) {
	e.At(1, onTimer)
	e.Go("pump", pump)
}

func onTimer() {
	stage(2)
	sink = 42
}

func pump(p *sim.Proc) {
	f, _ := os.Open("/dev/null")
	_ = f
}
