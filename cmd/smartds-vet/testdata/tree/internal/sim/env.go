// Package sim is the miniature simulator core for the driver's
// end-to-end tree: its registration surface mints the hotalloc /
// simblock roots used by the packages that import it, proving the
// call-graph layer works across package boundaries.
package sim

// Env is the registration surface of the event loop.
type Env struct{}

// At registers fn at virtual time t.
func (e *Env) At(t float64, fn func()) {}

// After registers fn dt after now.
func (e *Env) After(dt float64, fn func()) {}

// Go spawns a simulated process.
func (e *Env) Go(name string, fn func(p *Proc)) {}

// Proc is a simulated process handle.
type Proc struct{}
