// Package gctune violates the finalizer invariant: a forced
// collection in simulation code.
package gctune

import "runtime"

// Tune forces a collection in host time.
func Tune() {
	runtime.GC()
}
