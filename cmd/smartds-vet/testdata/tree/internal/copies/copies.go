// Package copies violates mutexcopy: a lock-containing struct passed
// by value.
package copies

import "sync"

type table struct {
	mu sync.Mutex
	n  int
}

// Snapshot copies table — and its mutex — by value.
func Snapshot(t table) int {
	return t.n
}
