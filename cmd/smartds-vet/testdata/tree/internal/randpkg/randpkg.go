// Package randpkg violates the randsrc invariant.
package randpkg

import "math/rand"

// Draw uses the global, unseeded stdlib generator.
func Draw() int { return rand.Int() }
