// Package ackpath violates the errdrop invariant: it sits under
// internal/storage and drops the error of a callee that can fail.
package ackpath

import "errors"

var errShort = errors.New("short write")

func flush(n int) error {
	if n == 0 {
		return errShort
	}
	return nil
}

// Ack acknowledges without knowing whether flush made it durable.
func Ack() {
	flush(1)
}
