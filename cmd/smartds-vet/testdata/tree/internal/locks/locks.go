// Package locks violates lock ordering: AB orders a→b, BA composes
// b→a through acquireA, and only the whole-program acquisition graph
// sees the cycle.
package locks

import "sync"

var a, b sync.Mutex

// AB nests b under a.
func AB() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

// BA holds b across a call that takes a.
func BA() {
	b.Lock()
	defer b.Unlock()
	acquireA()
}

func acquireA() {
	a.Lock()
	a.Unlock()
}
