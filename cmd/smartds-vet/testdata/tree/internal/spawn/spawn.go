// Package spawn violates the simspawn invariant.
package spawn

// Race starts a goroutine the cooperative scheduler cannot see.
func Race(fn func()) {
	go fn()
}
