// Package floats violates the floatacc invariant.
package floats

// Same compares accumulated float values exactly.
func Same(a, b float64) bool { return a == b }
