// Package evlogger violates the maporder invariant the way a naive
// structured logger would: formatting a label map straight into the
// line buffer leaks Go's randomized iteration order into log bytes,
// which breaks the event log's byte-determinism contract (the real
// internal/evlog takes ordered key/value pairs instead).
package evlogger

import "strings"

// Line formats one structured event with its labels.
func Line(msg string, labels map[string]string) string {
	var b strings.Builder
	b.WriteString(msg)
	for k, v := range labels {
		b.WriteString(" " + k + "=" + v)
	}
	return b.String()
}
