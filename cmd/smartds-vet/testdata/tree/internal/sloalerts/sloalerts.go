// Package sloalerts violates the wallclock invariant the way a naive
// SLO engine would: stamping a fired alert with the host clock instead
// of virtual sim time makes alert artifacts differ run to run (the
// real internal/slo stamps alerts with Env.Now()).
package sloalerts

import "time"

// Alert is a fired burn-rate alert.
type Alert struct {
	SLO string
	At  int64
}

// Fire stamps a new alert with the host clock.
func Fire(slo string) Alert {
	return Alert{SLO: slo, At: time.Now().UnixNano()}
}
