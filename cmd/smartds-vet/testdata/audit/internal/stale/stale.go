// Package stale carries rotten waivers for the -waiver-audit tests:
// one names an analyzer that does not exist, the other names a real
// analyzer but suppresses nothing.
package stale

//detcheck:nosuchkey vestigial key from a deleted analyzer
var x = 1

//detcheck:wallclock nothing on this line touches the clock
var y = 2
