package main

// go vet -vettool support. The go command drives a vettool with three
// entry points:
//
//   tool -V=full          version handshake for build caching
//   tool -flags           JSON schema of the tool's flags
//   tool [flags] pkg.cfg  analyze one package unit
//
// The .cfg file is a JSON description of a single type-checked package
// unit: its Go files plus export-data files for every dependency
// (already compiled by the go command). This mirrors
// golang.org/x/tools/go/analysis/unitchecker on top of the standard
// library's gc export-data importer.

import (
	"encoding/json"
	goflag "flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// vetConfig is the subset of the go command's per-package vet config
// this tool consumes.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// printFlagsJSON answers `tool -flags`: the go command passes through
// only flags the tool advertises.
func printFlagsJSON(stdout io.Writer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "run the " + a.Name + " analyzer"})
		a.Flags.VisitAll(func(f *goflag.Flag) {
			out = append(out, jsonFlag{
				Name:  a.Name + "." + f.Name,
				Bool:  isBoolFlag(f),
				Usage: f.Usage,
			})
		})
	}
	data, err := json.Marshal(out)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(stdout, "%s\n", data)
}

// runUnit analyzes one package unit described by a vet config file.
func runUnit(cfgFile string, enabled map[string]*bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "smartds-vet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "smartds-vet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// This tool exports no facts, but the go command expects the vetx
	// output file to exist after a successful run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "smartds-vet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "smartds-vet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErr error
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return base.Import(importPath)
		}),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "smartds-vet: %s: %v\n", cfg.ImportPath, typeErr)
		return 2
	}

	var diags []diagnostic
	for _, a := range analyzers {
		if en, ok := enabled[a.Name]; ok && !*en {
			continue
		}
		a := a
		pass := newPass(a, fset, files, cfg.ImportPath, pkg, info, func(d diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "smartds-vet: %s: %s: %v\n", a.Name, cfg.ImportPath, err)
			return 2
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].d.Pos), fset.Position(diags[j].d.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	for _, d := range diags {
		// The go command relays vettool stderr verbatim; match the
		// standard vet diagnostic shape.
		fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.d.Pos), d.analyzer, d.d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// isBoolFlag reports whether a flag is boolean (the go command needs
// to know to pass -x=true rather than -x true).
func isBoolFlag(f *goflag.Flag) bool {
	b, ok := f.Value.(interface{ IsBoolFlag() bool })
	return ok && b.IsBoolFlag()
}
