// Command smartds-sim runs one free-form cluster scenario and prints
// client-observed results plus middle-tier resource usage.
//
// Usage:
//
//	smartds-sim -kind smartds -ports 2 -workers 4 -window 128 -measure 50ms
//	smartds-sim -kind cpu -workers 48 -reads 0.2 -open-rate 1e6
//	smartds-sim -config examples/scenarios/smartds-mixed.json
//
// The observability flags (-trace, -trace-sample, -slo, -log-level,
// -report, -metrics, -series-*, -label-budget) are shared with
// smartds-bench via internal/cliflags and behave identically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/disagg/smartds/internal/cliflags"
	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/faults"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/telemetry"
	"github.com/disagg/smartds/internal/trace"
)

// runScenario executes a JSON-described scenario end to end.
func runScenario(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sc, err := cluster.ParseScenario(data)
	if err != nil {
		fatal(err)
	}
	cfg, err := sc.ClusterConfig()
	if err != nil {
		fatal(err)
	}
	c := cluster.New(cfg)
	if sc.Maintenance {
		m := c.MT.StartMaintenance(middletier.MaintenanceConfig{}, c.Storage)
		defer m.Stop()
	}
	res := c.Run(sc.WorkloadConfig())
	printResults(c, res)
	if res.Errors > 0 || res.VerifyMismatches > 0 {
		os.Exit(1)
	}
}

func main() {
	common := cliflags.Register(flag.CommandLine)
	kindFlag := flag.String("kind", "smartds", "middle-tier design: cpu | acc | bf2 | smartds")
	ports := flag.Int("ports", 1, "SmartDS ports")
	workers := flag.Int("workers", 2, "host CPU cores serving I/O")
	window := flag.Int("window", 64, "closed-loop outstanding requests per client")
	openRate := flag.Float64("open-rate", 0, "open-loop request rate (req/s); 0 = closed loop")
	reads := flag.Float64("reads", 0, "read fraction")
	bypass := flag.Float64("bypass", 0, "latency-sensitive (no-compression) fraction")
	storageN := flag.Int("storage", 3, "storage servers")
	clients := flag.Int("clients", 1, "compute clients")
	warmup := flag.Duration("warmup", 5*time.Millisecond, "virtual warmup")
	measure := flag.Duration("measure", 30*time.Millisecond, "virtual measurement window")
	modeled := flag.Bool("modeled", false, "model payload sizes instead of moving real blocks")
	ddioOff := flag.Bool("no-ddio", false, "disable DDIO (Acc baseline)")
	maintenance := flag.Bool("maintenance", false, "run background maintenance services")
	configPath := flag.String("config", "", "JSON scenario file (overrides the other flags)")

	flag.Parse()

	if *configPath != "" {
		runScenario(*configPath)
		return
	}

	var kind middletier.Kind
	switch *kindFlag {
	case "cpu", "cpu-only":
		kind = middletier.CPUOnly
	case "acc", "accel":
		kind = middletier.Accel
	case "bf2":
		kind = middletier.BF2
	case "smartds", "sds":
		kind = middletier.SmartDS
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kindFlag)
		os.Exit(2)
	}

	proto, err := common.Protocol()
	if err != nil {
		fatal(err)
	}
	specs, err := common.SLO()
	if err != nil {
		fatal(err)
	}

	cfg := cluster.DefaultConfig(kind)
	cfg.Seed = common.Seed
	cfg.Functional = !*modeled
	cfg.MT.Protocol = proto
	cfg.NumStorage = *storageN
	cfg.NumClients = *clients
	cfg.MT.Workers = *workers
	cfg.MT.Ports = *ports
	cfg.MT.DDIO = !*ddioOff
	cfg.SLO = specs
	if kind != middletier.SmartDS && kind != middletier.BF2 {
		cfg.MT.Ports = 1
	}

	tracer := common.NewTracer(common.Breakdown)
	cfg.Trace = tracer
	folded := common.NewFolded()
	cfg.CritpathFolded = folded
	reg := common.NewRegistry()
	cfg.Telemetry = reg
	cfg.TelemetryExp = "sim"
	var c *cluster.Cluster
	cfg.Log = common.NewLogger(os.Stderr, func() float64 { return c.Env.Now() })
	var sched *faults.Schedule
	if common.FaultSpec != "" {
		var err error
		sched, err = faults.Parse(common.FaultSpec)
		if err != nil {
			fatal(err)
		}
		// Bounded replication fan-outs so a crashed replica cannot
		// strand client window slots (see middletier.ReplicateTimeout).
		if cfg.MT.ReplicateTimeout == 0 {
			cfg.MT.ReplicateTimeout = 1.5e-3
		}
	}
	c = cluster.New(cfg)
	if *maintenance {
		m := c.MT.StartMaintenance(middletier.MaintenanceConfig{}, c.Storage)
		defer m.Stop()
	}
	var inj *faults.Injector
	if sched != nil {
		var err error
		inj, err = c.ApplyFaults(sched)
		if err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res := c.Run(cluster.Workload{
		Window:         *window,
		Rate:           *openRate,
		Warmup:         warmup.Seconds(),
		Measure:        measure.Seconds(),
		ReadFraction:   *reads,
		BypassFraction: *bypass,
	})

	printResults(c, res)
	durabilityViolated := false
	if inj != nil {
		fmt.Println(inj.Report().String())
		fmt.Println(inj.Monitor.Stats(sched).Table().String())
		if cfg.Functional {
			if err := c.CheckAckedWrites(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				durabilityViolated = true
			} else {
				fmt.Println("durability: every acked write readable from a current replica")
			}
		}
	}
	if len(res.Alerts) > 0 {
		tbl := metrics.NewTable("SLO alerts", "slo", "kind", "at", "detail")
		for _, al := range res.Alerts {
			tbl.AddRow(al.SLO, al.Kind, metrics.FormatDuration(al.At), al.Detail)
		}
		fmt.Println(tbl.String())
	}
	if common.Breakdown {
		spanTbl := metrics.NewTable("request spans", "span", "count", "mean", "p99", "max")
		for _, s := range tracer.Spans() {
			spanTbl.AddRow(s.Label, s.Count, metrics.FormatDuration(s.Mean),
				metrics.FormatDuration(s.P99), metrics.FormatDuration(s.Max))
		}
		fmt.Println(spanTbl.String())
		wb := cluster.StageBreakdownFor(tracer, cluster.WriteStages, res.Lat.Mean)
		fmt.Println(wb.Table("write-latency stage breakdown").String())
		if *reads > 0 {
			rb := cluster.StageBreakdownFor(tracer, cluster.ReadStages, res.Lat.Mean)
			fmt.Println(rb.Table("read-latency stage breakdown").String())
			fmt.Println("note: with a mixed workload the net/request, mt/parse and net/reply" +
				" histograms blend reads and writes, so neither table tiles its own" +
				" operation exactly; run -reads 0 (or -exp ext-reads -breakdown) for" +
				" an exact per-op reconciliation")
		}
	}
	if common.TraceFile != "" {
		if err := writeTrace(tracer, common.TraceFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d span leaks)\n", common.TraceFile, tracer.Leaked())
	}
	if common.FoldedFile != "" {
		if err := writeFile(common.FoldedFile, folded.Write); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "critical-path folded stacks written to %s\n", common.FoldedFile)
	}
	if reg != nil {
		if common.ReportFile != "" {
			rep := reg.BuildReport("sim", common.Seed, *modeled, map[string]string{
				"kind":         *kindFlag,
				"faults":       common.FaultSpec,
				"replication":  proto.String(),
				"slo":          common.SLOSpec,
				"trace_sample": fmt.Sprintf("%g", common.TraceSample),
			})
			if err := writeFile(common.ReportFile, func(w io.Writer) error {
				return telemetry.WriteReport(w, rep)
			}); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "run report written to %s\n", common.ReportFile)
		}
		if err := common.WriteArtifacts(reg, writeFile); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "wall time: %s\n", time.Since(start).Round(time.Millisecond))

	if inj != nil {
		// Under a fault campaign, client-visible errors are honest
		// refusals (unroutable writes while replicas are dark); what must
		// hold is data integrity and durability.
		if res.VerifyMismatches > 0 || durabilityViolated {
			os.Exit(1)
		}
		return
	}
	if res.Errors > 0 || res.VerifyMismatches > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// writeFile creates path and streams fn's output into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTrace exports the tracer as a Chrome trace-event JSON file.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printResults renders the standard result table.
func printResults(c *cluster.Cluster, res cluster.Results) {
	tbl := metrics.NewTable(fmt.Sprintf("%s scenario", c.KindName()),
		"metric", "value")
	tbl.AddRow("throughput", metrics.FormatGbps(res.Throughput))
	tbl.AddRow("requests/s", fmt.Sprintf("%.0f", res.ReqPerSec))
	tbl.AddRow("requests measured", res.Requests)
	tbl.AddRow("errors", res.Errors)
	tbl.AddRow("avg latency", metrics.FormatDuration(res.Lat.Mean))
	tbl.AddRow("p50", metrics.FormatDuration(res.Lat.P50))
	tbl.AddRow("p99", metrics.FormatDuration(res.Lat.P99))
	tbl.AddRow("p999", metrics.FormatDuration(res.Lat.P999))
	tbl.AddRow("host mem read", metrics.FormatGbps(res.MemReadRate))
	tbl.AddRow("host mem write", metrics.FormatGbps(res.MemWriteRate))
	tbl.AddRow("PCIe H2D (all devices)", metrics.FormatGbps(res.TotalPCIeH2D()))
	tbl.AddRow("PCIe D2H (all devices)", metrics.FormatGbps(res.TotalPCIeD2H()))
	tbl.AddRow("read verify mismatches", res.VerifyMismatches)
	fmt.Println(tbl.String())
}
