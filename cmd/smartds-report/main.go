// Command smartds-report compares two machine-readable run reports
// (written by smartds-bench -report) and enforces the performance
// regression gate: it prints a per-run comparison table and exits
// non-zero when any run's throughput dropped or tail latency inflated
// beyond the gate thresholds, or when a baseline run vanished.
//
// Usage:
//
//	smartds-report baseline.json current.json
//	smartds-report -baseline baseline.json current.json
//	smartds-report -max-tput-drop 0.10 -max-p999-inflate 0.50 base.json cur.json
//	smartds-report -show report.json   # print one report's runs, no gate
//	smartds-report -slo report.json    # fail if any run fired an SLO alert
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/telemetry"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report path (alternative to the first positional argument)")
	show := flag.Bool("show", false, "print a single report's runs without comparing")
	blame := flag.Bool("blame", false, "print a single report's latency blame profiles (per-stage critical-path attribution) with p999 exemplar drill-downs")
	sloGate := flag.Bool("slo", false, "SLO gate: print a single report's fired alerts and exit non-zero when any run fired one")
	g := telemetry.DefaultGate()
	flag.Float64Var(&g.MaxThroughputDrop, "max-tput-drop", g.MaxThroughputDrop,
		"fail when throughput falls below baseline*(1-frac)")
	flag.Float64Var(&g.MaxP999Inflate, "max-p999-inflate", g.MaxP999Inflate,
		"fail when p999 rises above baseline*(1+frac)")
	flag.Float64Var(&g.P999Floor, "p999-floor", g.P999Floor,
		"ignore p999 inflation while the current p999 is under this many seconds")
	minReq := flag.Uint64("min-requests", g.MinRequests,
		"skip runs that measured fewer requests than this")
	flag.Float64Var(&g.MaxEventsPerSecDrop, "max-eps-drop", g.MaxEventsPerSecDrop,
		"fail when simulator events/sec falls below baseline*(1-frac); 0 disables")
	flag.Parse()
	g.MinRequests = *minReq

	args := flag.Args()
	if *sloGate {
		if len(args) != 1 {
			usage("-slo takes exactly one report path")
		}
		rep, err := telemetry.LoadReport(args[0])
		if err != nil {
			fatal(err)
		}
		sloExit(rep)
		return
	}
	if *blame {
		if len(args) != 1 {
			usage("-blame takes exactly one report path")
		}
		rep, err := telemetry.LoadReport(args[0])
		if err != nil {
			fatal(err)
		}
		printBlame(rep)
		return
	}
	if *show {
		if len(args) != 1 {
			usage("-show takes exactly one report path")
		}
		rep, err := telemetry.LoadReport(args[0])
		if err != nil {
			fatal(err)
		}
		printReport(rep)
		return
	}

	basePath := *baseline
	curPath := ""
	switch {
	case basePath != "" && len(args) == 1:
		curPath = args[0]
	case basePath == "" && len(args) == 2:
		basePath, curPath = args[0], args[1]
	default:
		usage("need a baseline and a current report")
	}

	base, err := telemetry.LoadReport(basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := telemetry.LoadReport(curPath)
	if err != nil {
		fatal(err)
	}

	deltas, violations := telemetry.Compare(base, cur, g)
	fmt.Println(telemetry.ComparisonTable(deltas).String())
	if base.SimPerf != nil && cur.SimPerf != nil && base.SimPerf.EventsPerSec > 0 {
		fmt.Printf("sim perf: %.0f -> %.0f events/sec (%+.1f%%), %.2f -> %.2f allocs/event\n",
			base.SimPerf.EventsPerSec, cur.SimPerf.EventsPerSec,
			(cur.SimPerf.EventsPerSec/base.SimPerf.EventsPerSec-1)*100,
			base.SimPerf.AllocsPerEvent, cur.SimPerf.AllocsPerEvent)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "regression gate FAILED (%d violations):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "regression gate passed: %d runs within thresholds\n", len(deltas))
}

// sloExit prints every fired SLO alert and exits non-zero when any run
// fired one — the CI gate that turns a burn-rate page into a red build.
func sloExit(rep *telemetry.Report) {
	fired := 0
	tbl := metrics.NewTable(fmt.Sprintf("SLO alerts in %q (seed %d)", rep.Name, rep.Seed),
		"run", "slo", "kind", "severity", "at", "detail")
	for _, rr := range rep.Runs {
		for _, al := range rr.Alerts {
			fired++
			tbl.AddRow(rr.Key(), al.SLO, al.Kind, al.Severity,
				metrics.FormatDuration(al.At), al.Detail)
		}
	}
	if fired == 0 {
		fmt.Fprintf(os.Stderr, "SLO gate passed: no alerts fired across %d runs\n", len(rep.Runs))
		return
	}
	fmt.Println(tbl.String())
	fmt.Fprintf(os.Stderr, "SLO gate FAILED: %d alerts fired\n", fired)
	os.Exit(1)
}

// printBlame renders each run's critical-path blame profile: the
// fraction of client-observed latency attributed to every stage at the
// mean and at the tail exemplars, then the p999 exemplar's segment
// list — the "why is p999 high?" answer in one screen.
func printBlame(rep *telemetry.Report) {
	printed := 0
	for _, rr := range rep.Runs {
		cp := rr.Critpath
		if cp == nil {
			continue
		}
		printed++
		tbl := metrics.NewTable(
			fmt.Sprintf("latency blame %s (%s, %d sampled requests)", rr.Key(), rr.Protocol, cp.Requests),
			"stage", "kind", "mean%", "p99%", "p999%", "mean")
		for _, st := range cp.Stages {
			kind := "service"
			if st.Wait {
				kind = "wait"
			}
			tbl.AddRow(st.Stage, kind,
				pct(st.MeanFrac), pct(st.P99Frac), pct(st.P999Frac),
				metrics.FormatDuration(st.MeanSec))
		}
		fmt.Println(tbl.String())
		if ex := cp.P999; ex != nil {
			etbl := metrics.NewTable(
				fmt.Sprintf("p999 exemplar %s (trace %s, e2e %s)", rr.Key(), ex.TraceID, metrics.FormatDuration(ex.E2E)),
				"segment", "kind", "dur", "share")
			for _, seg := range ex.Segments {
				kind := "service"
				if seg.Wait {
					kind = "wait"
				}
				etbl.AddRow(seg.Stage, kind, metrics.FormatDuration(seg.Dur), pct(seg.Frac))
			}
			fmt.Println(etbl.String())
		}
	}
	if printed == 0 {
		fmt.Fprintln(os.Stderr, "no critpath sections in this report (run with tracing enabled, e.g. -trace-sample 0.01 -report ...)")
	}
}

// pct renders a fraction as a percentage cell.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// printReport renders one report's run records as a table.
func printReport(rep *telemetry.Report) {
	tbl := metrics.NewTable(fmt.Sprintf("run report %q (seed %d, quick=%v)", rep.Name, rep.Seed, rep.Quick),
		"run", "requests", "errors", "throughput", "p50", "p99", "p999")
	for _, rr := range rep.Runs {
		tbl.AddRow(rr.Key(), rr.Requests, rr.Errors,
			metrics.FormatGbps(rr.ThroughputBps),
			metrics.FormatDuration(rr.Latency.P50),
			metrics.FormatDuration(rr.Latency.P99),
			metrics.FormatDuration(rr.Latency.P999))
	}
	fmt.Println(tbl.String())
	if sp := rep.SimPerf; sp != nil {
		fmt.Printf("sim perf: %d events in %.2fs = %.0f events/sec, %.2f allocs/event\n",
			sp.Events, sp.WallSeconds, sp.EventsPerSec, sp.AllocsPerEvent)
	}
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "smartds-report: "+msg)
	fmt.Fprintln(os.Stderr, "usage: smartds-report [flags] baseline.json current.json")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
