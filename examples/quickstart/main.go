// Quickstart: assemble a disaggregated block storage cluster with a
// SmartDS middle tier, write 4 KB blocks for a few simulated
// milliseconds, and print client-observed throughput and latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

func main() {
	// One middle-tier server (SmartDS-1: one 100 GbE port, one hardware
	// LZ4 engine, two host cores), three storage servers, one client.
	cfg := cluster.DefaultConfig(middletier.SmartDS)
	c := cluster.New(cfg)

	// Saturating closed loop of write requests with real corpus data.
	res := c.Run(cluster.Workload{
		Window:  128,
		Warmup:  5e-3,
		Measure: 20e-3,
	})

	fmt.Println("SmartDS-1 middle tier, 4 KB writes, 3-way replication")
	fmt.Printf("  throughput:   %s (%.2fM requests/s)\n",
		metrics.FormatGbps(res.Throughput), res.ReqPerSec/1e6)
	fmt.Printf("  latency:      avg %s  p99 %s  p999 %s\n",
		metrics.FormatDuration(res.Lat.Mean),
		metrics.FormatDuration(res.Lat.P99),
		metrics.FormatDuration(res.Lat.P999))
	fmt.Printf("  host memory:  %s read + %s write (AAMS keeps payloads on the card)\n",
		metrics.FormatGbps(res.MemReadRate), metrics.FormatGbps(res.MemWriteRate))
	fmt.Printf("  PCIe:         %s H2D + %s D2H\n",
		metrics.FormatGbps(res.SDSH2D), metrics.FormatGbps(res.SDSD2H))
	fmt.Printf("  errors: %d, read-verify mismatches: %d\n", res.Errors, res.VerifyMismatches)

	// Every write really landed (compressed + CRC-framed) on all three
	// storage servers.
	for i, srv := range c.Storage {
		fmt.Printf("  storage[%d]: %d writes, %s live\n",
			i, srv.Writes, metrics.FormatBytes(float64(srv.Store().LiveBytes())))
	}
}
