// Writepath: the paper's Listing 1, line for line, against the Table 2
// API — serve write requests by splitting each message (header to host
// memory, payload to device memory), compressing on the hardware
// engine, and forwarding to a storage server.
//
//	go run ./examples/writepath
package main

import (
	"fmt"

	"github.com/disagg/smartds/internal/blockstore"
	"github.com/disagg/smartds/internal/core"
	"github.com/disagg/smartds/internal/corpus"
	"github.com/disagg/smartds/internal/lz4"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/netsim"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
)

const (
	headSize = blockstore.HeaderSize
	maxSize  = 8192
	nBlocks  = 64
)

func main() {
	env := sim.NewEnv()
	fabric := netsim.NewFabric(env, netsim.DefaultConfig())
	hostMem := mem.New(env, mem.DefaultConfig())

	// The SmartDS card: one RoCE instance, one LZ4 engine, HBM.
	devCfg := core.DefaultConfig(1)
	dev := core.NewDevice(env, "sds", fabric, hostMem, devCfg)

	// A remote VM and a remote storage server (plain RDMA peers).
	vm := rdma.NewStack(env, fabric.NewPort("vm", 12.5e9), rdma.DefaultConfig())
	ss := rdma.NewStack(env, fabric.NewPort("ss", 12.5e9), rdma.DefaultConfig())

	/* Allocating host and device memory buffers */
	hBufRecv := dev.HostAlloc(maxSize)
	hBufSend := dev.HostAlloc(maxSize)
	dBufRecv, _ := dev.DevAlloc(maxSize)
	dBufSend, _ := dev.DevAlloc(maxSize)

	/* Open RoCE instance 0 */
	ctx, _ := dev.OpenRoCEInstance(0)

	/* Connect queue pairs with remote client and storage server */
	qpRecv := ctx.CreateQP()
	remoteVM := vm.CreateQP()
	rdma.Connect(qpRecv, remoteVM)
	qpSend := ctx.CreateQP()
	remoteSS := ss.CreateQP()
	rdma.Connect(qpSend, remoteSS)

	// The storage server acknowledges every block it receives.
	stored := 0
	storedBytes := 0
	remoteSS.OnRecv = func(m *rdma.Message) {
		stored++
		storedBytes += len(m.Data)
	}

	// The VM issues write requests: header + 4 KB block.
	blocks := corpus.New(7)
	env.Go("vm", func(p *sim.Proc) {
		for i := 0; i < nBlocks; i++ {
			block := blocks.Block(4096)
			h := blockstore.Header{
				Op: blockstore.OpWrite, VMID: 1, ReqID: uint64(i + 1),
				OrigLen: uint32(len(block)), CRC: lz4.Checksum(block),
			}
			// Every fourth write is latency-sensitive: no compression.
			if i%4 == 3 {
				h.Flags |= blockstore.FlagLatencySensitive
			}
			p.Wait(remoteVM.Send(blockstore.Message(&h, block)))
		}
	})

	// The middle-tier software loop: Listing 1.
	compressedTotal, rawTotal := 0, 0
	env.Go("middle-tier", func(p *sim.Proc) {
		for served := 0; served < nBlocks; served++ {
			/* Recv a write request: header to host memory, payload stays
			   in the SmartNIC's memory */
			e := ctx.DevMixedRecv(qpRecv, hBufRecv, headSize, dBufRecv, maxSize)
			res := core.Poll(p, e)
			payloadSize := res.Size

			/* User's logic flexibly parses the content in h_buf_recv and
			   prepares the send header */
			parsed, err := blockstore.Decode(hBufRecv.Bytes())
			if err != nil {
				panic(err)
			}
			out := blockstore.Header{
				Op: blockstore.OpReplicate, ReqID: parsed.ReqID,
				OrigLen: parsed.OrigLen, CRC: parsed.CRC,
			}
			copy(hBufSend.Bytes(), out.Encode())

			if parsed.Flags&blockstore.FlagLatencySensitive != 0 {
				/* Directly send a latency-sensitive block to the storage
				   server */
				e = ctx.DevMixedSend(qpSend, hBufSend, headSize, dBufRecv, payloadSize)
				core.Poll(p, e)
				rawTotal += payloadSize
			} else {
				/* Compress the data block via hardware engine 0 */
				e = ctx.DevFunc(dBufRecv, payloadSize, dBufSend, lz4.LevelDefault)
				r := core.Poll(p, e)
				compressedSize := r.Size
				/* Send the compressed block to the storage server */
				e = ctx.DevMixedSend(qpSend, hBufSend, headSize, dBufSend, compressedSize)
				core.Poll(p, e)
				compressedTotal += compressedSize
				rawTotal += payloadSize
			}
		}
	})

	env.Run(0)

	fmt.Printf("served %d write requests in %s of virtual time\n",
		nBlocks, metrics.FormatDuration(env.Now()))
	fmt.Printf("storage server received %d messages (%s)\n",
		stored, metrics.FormatBytes(float64(storedBytes)))
	fmt.Printf("engine compressed %s of blocks into %s (%.2fx)\n",
		metrics.FormatBytes(float64(rawTotal)*0.75),
		metrics.FormatBytes(float64(compressedTotal)),
		float64(rawTotal)*0.75/float64(compressedTotal))
	p := dev.PCIe().Snapshot()
	fmt.Printf("PCIe traffic: only %s D2H + %s H2D crossed to the host\n",
		metrics.FormatBytes(p.D2HBytes), metrics.FormatBytes(p.H2DBytes))
}
