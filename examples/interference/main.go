// Interference: demonstrate §5.3 — when co-located maintenance work
// (modeled with the Intel-MLC-style injector) hammers host memory, the
// CPU-only middle tier collapses while SmartDS is unaffected, because
// AAMS keeps payloads out of host memory entirely.
//
//	go run ./examples/interference
package main

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/mem"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

func run(kind middletier.Kind, workers, window int, pressure bool) cluster.Results {
	cfg := cluster.DefaultConfig(kind)
	cfg.MT.Workers = workers
	c := cluster.New(cfg)
	if pressure {
		mlc := mem.NewMLC(c.Env, c.MT.Mem, mem.MLCConfig{Workers: 16, Delay: 0, Chunk: 256 << 10})
		mlc.Start()
	}
	return c.Run(cluster.Workload{Window: window, Warmup: 4e-3, Measure: 15e-3})
}

func main() {
	fmt.Println("memory-pressure isolation: 16-worker MLC injector on the middle-tier server")
	fmt.Printf("%-10s %-10s %-14s %-12s %s\n", "design", "MLC", "throughput", "avg lat", "p999")
	for _, cfgRow := range []struct {
		name    string
		kind    middletier.Kind
		workers int
		window  int
	}{
		{"CPU-only", middletier.CPUOnly, 32, 256},
		{"SmartDS-1", middletier.SmartDS, 2, 128},
	} {
		for _, pressure := range []bool{false, true} {
			res := run(cfgRow.kind, cfgRow.workers, cfgRow.window, pressure)
			mlcLabel := "off"
			if pressure {
				mlcLabel = "max"
			}
			fmt.Printf("%-10s %-10s %-14s %-12s %s\n",
				cfgRow.name, mlcLabel,
				metrics.FormatGbps(res.Throughput),
				metrics.FormatDuration(res.Lat.Mean),
				metrics.FormatDuration(res.Lat.P999))
		}
	}
	fmt.Println("\nSmartDS holds steady: its payloads never touch the contended bus.")
}
