// Readpath: write blocks through a SmartDS middle tier, read them
// back, and verify every byte survives the compress -> replicate ->
// fetch -> decompress round trip.
//
//	go run ./examples/readpath
package main

import (
	"fmt"
	"os"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

func main() {
	cfg := cluster.DefaultConfig(middletier.SmartDS)
	c := cluster.New(cfg)
	// Storage servers verify frame CRCs on ingest too.
	for _, srv := range c.Storage {
		srv.Verify = true
	}

	res := c.Run(cluster.Workload{
		Window:       64,
		Warmup:       5e-3,
		Measure:      25e-3,
		ReadFraction: 0.4, // a 60/40 write/read mix
	})

	fmt.Println("SmartDS-1 read/write mix (reads verified against written data)")
	fmt.Printf("  throughput: %s (%.0f req/s)\n", metrics.FormatGbps(res.Throughput), res.ReqPerSec)
	fmt.Printf("  latency:    avg %s  p99 %s\n",
		metrics.FormatDuration(res.Lat.Mean), metrics.FormatDuration(res.Lat.P99))
	fmt.Printf("  served:     %d writes, %d reads\n", c.MT.WritesDone, c.MT.ReadsDone)
	fmt.Printf("  errors: %d, verification mismatches: %d\n", res.Errors, res.VerifyMismatches)

	if res.Errors > 0 || res.VerifyMismatches > 0 {
		fmt.Println("DATA INTEGRITY FAILURE")
		os.Exit(1)
	}
	fmt.Println("  every read returned exactly the bytes that were written ✓")
}
