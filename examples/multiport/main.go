// Multiport: demonstrate §5.4 — SmartDS throughput scales linearly
// with the number of utilized 100 GbE ports because only headers cross
// PCIe, regardless of port count.
//
//	go run ./examples/multiport
package main

import (
	"fmt"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
)

func main() {
	fmt.Println("SmartDS port scaling (writes, 4 KB blocks, 3-way replication)")
	fmt.Printf("%-12s %-14s %-12s %-16s %s\n",
		"config", "throughput", "avg lat", "host mem r+w", "PCIe total")
	base := 0.0
	for _, ports := range []int{1, 2, 4} {
		cfg := cluster.DefaultConfig(middletier.SmartDS)
		cfg.MT.Ports = ports
		cfg.MT.Workers = 2 * ports // two host cores per port (paper §5.5)
		cfg.NumClients = ports
		cfg.NumStorage = 3 * ports
		c := cluster.New(cfg)
		res := c.Run(cluster.Workload{Window: 128, Warmup: 4e-3, Measure: 12e-3})
		if ports == 1 {
			base = res.Throughput
		}
		fmt.Printf("%-12s %-14s %-12s %-16s %-12s (%.2fx of 1 port)\n",
			fmt.Sprintf("SmartDS-%d", ports),
			metrics.FormatGbps(res.Throughput),
			metrics.FormatDuration(res.Lat.Mean),
			metrics.FormatGbps(res.MemReadRate+res.MemWriteRate),
			metrics.FormatGbps(res.SDSH2D+res.SDSD2H),
			res.Throughput/base)
	}
}
