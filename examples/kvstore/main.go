// KVStore: a log-structured key-value store whose pages persist on a
// virtual disk served by a SmartDS middle tier — the kind of workload
// the paper's introduction motivates (LSM-style storage engines whose
// pages compress well, so middle-tier compression pays).
//
// The store appends fixed 4 KB pages of serialized records, keeps an
// in-memory index (key -> page LBA), and reads pages back on Get. All
// persistence flows through the full simulated stack: AAMS split,
// hardware LZ4, 3-way replication, CRC verification.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"os"

	"github.com/disagg/smartds/internal/cluster"
	"github.com/disagg/smartds/internal/metrics"
	"github.com/disagg/smartds/internal/middletier"
	"github.com/disagg/smartds/internal/rdma"
	"github.com/disagg/smartds/internal/sim"
	"github.com/disagg/smartds/internal/vdisk"
)

const pageSize = 4096

// kv is the toy storage engine.
type kv struct {
	disk    *vdisk.Disk
	index   map[string]uint64 // key -> page LBA
	page    []byte            // open page being filled
	pageOff int
	nextLBA uint64
}

func newKV(disk *vdisk.Disk) *kv {
	return &kv{disk: disk, index: make(map[string]uint64), page: make([]byte, pageSize)}
}

// record layout: u16 keyLen, u16 valLen, key, val
func (s *kv) Put(p *sim.Proc, key, val string) error {
	need := 4 + len(key) + len(val)
	if s.pageOff+need > pageSize {
		if err := s.flushPage(p); err != nil {
			return err
		}
	}
	off := s.pageOff
	binary.LittleEndian.PutUint16(s.page[off:], uint16(len(key)))
	binary.LittleEndian.PutUint16(s.page[off+2:], uint16(len(val)))
	copy(s.page[off+4:], key)
	copy(s.page[off+4+len(key):], val)
	s.pageOff += need
	s.index[key] = s.nextLBA // key lives in the page being written next flush
	return nil
}

func (s *kv) flushPage(p *sim.Proc) error {
	if s.pageOff == 0 {
		return nil
	}
	for i := s.pageOff; i < pageSize; i++ {
		s.page[i] = 0
	}
	if err := s.disk.Write(p, s.nextLBA, s.page); err != nil {
		return err
	}
	s.nextLBA++
	s.page = make([]byte, pageSize)
	s.pageOff = 0
	return nil
}

// Get fetches the page holding key and scans it for the record.
func (s *kv) Get(p *sim.Proc, key string) (string, error) {
	lba, ok := s.index[key]
	if !ok {
		return "", fmt.Errorf("kv: unknown key %q", key)
	}
	page, err := s.disk.Read(p, lba)
	if err != nil {
		return "", err
	}
	for off := 0; off+4 <= len(page); {
		kl := int(binary.LittleEndian.Uint16(page[off:]))
		vl := int(binary.LittleEndian.Uint16(page[off+2:]))
		if kl == 0 && vl == 0 {
			break
		}
		if off+4+kl+vl > len(page) {
			break
		}
		k := string(page[off+4 : off+4+kl])
		v := string(page[off+4+kl : off+4+kl+vl])
		if k == key {
			return v, nil
		}
		off += 4 + kl + vl
	}
	return "", fmt.Errorf("kv: key %q missing from its page", key)
}

func main() {
	// A SmartDS-1 cluster; the KV store gets its own virtual disk.
	cfg := cluster.DefaultConfig(middletier.SmartDS)
	c := cluster.New(cfg)
	agent := rdma.NewStack(c.Env, c.Fabric.NewPort("kv-vm", 12.5e9), rdma.DefaultConfig())
	disk := vdisk.Attach(c.Env, c.MT.ConnectClient(agent), vdisk.Config{VMID: 77, Verify: true})
	store := newKV(disk)

	const n = 2000
	failed := false
	c.Env.Go("db", func(p *sim.Proc) {
		// Load phase: write n records.
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("user:%06d", i)
			val := fmt.Sprintf("{balance: %d, region: %d, status: ACTIVE}", i*17%10000, i%8)
			if err := store.Put(p, key, val); err != nil {
				fmt.Println("put failed:", err)
				failed = true
				return
			}
		}
		if err := store.flushPage(p); err != nil {
			fmt.Println("flush failed:", err)
			failed = true
			return
		}
		// Query phase: read every 37th record back.
		for i := 0; i < n; i += 37 {
			key := fmt.Sprintf("user:%06d", i)
			want := fmt.Sprintf("{balance: %d, region: %d, status: ACTIVE}", i*17%10000, i%8)
			got, err := store.Get(p, key)
			if err != nil || got != want {
				fmt.Printf("get %s failed: %v (got %q)\n", key, err, got)
				failed = true
				return
			}
		}
	})
	c.Env.Run(0)
	if failed {
		os.Exit(1)
	}

	fmt.Printf("kvstore: %d records across %d pages, all queried values correct ✓\n", n, store.nextLBA)
	fmt.Printf("  disk: %d writes (avg %s), %d reads (avg %s), %d errors\n",
		disk.Writes, metrics.FormatDuration(disk.WriteLat.Mean()),
		disk.Reads, metrics.FormatDuration(disk.ReadLat.Mean()), disk.Errors)
	stored := float64(c.Storage[0].Store().LiveBytes())
	raw := float64(store.nextLBA) * pageSize
	fmt.Printf("  compression: %s of pages stored as %s per replica (%.2fx)\n",
		metrics.FormatBytes(raw), metrics.FormatBytes(stored), raw/stored)
	fmt.Printf("  virtual time: %s\n", metrics.FormatDuration(c.Env.Now()))
}
