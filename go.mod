module github.com/disagg/smartds

go 1.22
